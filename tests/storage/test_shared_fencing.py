"""Unit tests for shared storage layouts, remote log reads and fencing."""

import pytest

from repro.config import StorageParams
from repro.sim import Simulator
from repro.storage import (
    FencedError,
    FencingController,
    LogRecord,
    PersistentReservationDriver,
    RecordKind,
    ResourceFencingDriver,
    SharedStorage,
    StonithDriver,
)


def rec(kind, txn=1, size=100.0):
    return LogRecord(kind=kind, txn_id=txn, size=size)


def test_provision_creates_partition_per_node():
    sim = Simulator()
    storage = SharedStorage(sim, shared_device=True)
    log1 = storage.provision("mds1")
    log2 = storage.provision("mds2")
    assert storage.provision("mds1") is log1
    assert storage.nodes() == ["mds1", "mds2"]
    assert log1 is not log2


def test_shared_device_serializes_all_logs():
    sim = Simulator()
    storage = SharedStorage(
        sim, StorageParams(bandwidth=100.0, san_concurrency=1), shared_device=True
    )
    log1, log2 = storage.provision("mds1"), storage.provision("mds2")
    done = []

    def writer(sim, log, tag):
        yield from log.force(rec(RecordKind.STARTED, size=100.0))
        done.append((tag, sim.now))

    sim.process(writer(sim, log1, "a"))
    sim.process(writer(sim, log2, "b"))
    sim.run()
    # Both writes queue on the single SAN device: 1s then 2s.
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]
    assert storage.disk_of("mds1") is storage.disk_of("mds2")


def test_separate_devices_run_in_parallel():
    sim = Simulator()
    storage = SharedStorage(sim, StorageParams(bandwidth=100.0), shared_device=False)
    log1, log2 = storage.provision("mds1"), storage.provision("mds2")
    done = []

    def writer(sim, log, tag):
        yield from log.force(rec(RecordKind.STARTED, size=100.0))
        done.append((tag, sim.now))

    sim.process(writer(sim, log1, "a"))
    sim.process(writer(sim, log2, "b"))
    sim.run()
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(1.0))]
    assert storage.disk_of("mds1") is not storage.disk_of("mds2")


def test_log_of_unknown_node_raises():
    sim = Simulator()
    storage = SharedStorage(sim)
    with pytest.raises(KeyError):
        storage.log_of("ghost")


def test_remote_read_requires_fencing():
    sim = Simulator()
    storage = SharedStorage(sim, StorageParams(bandwidth=1e9))
    storage.provision("mds1")
    storage.provision("mds2")

    def reader(sim):
        yield from storage.read_remote_log("mds1", "mds2")

    sim.process(reader(sim))
    with pytest.raises(FencedError):
        sim.run()


def test_remote_read_after_fencing_returns_records():
    sim = Simulator()
    storage = SharedStorage(sim, StorageParams(bandwidth=1e9))
    log2 = storage.provision("mds2")
    storage.provision("mds1")

    def setup(sim):
        yield from log2.force(rec(RecordKind.COMMITTED, txn=5))

    sim.process(setup(sim))
    sim.run()
    storage.fencing.fence("mds2", by="mds1")

    def reader(sim):
        records = yield from storage.read_remote_log("mds1", "mds2")
        return records

    p = sim.process(reader(sim))
    sim.run()
    assert [r.kind for r in p.value] == [RecordKind.COMMITTED]


def test_remote_read_own_log_rejected():
    sim = Simulator()
    storage = SharedStorage(sim)
    storage.provision("mds1")

    def reader(sim):
        yield from storage.read_remote_log("mds1", "mds1")

    sim.process(reader(sim))
    with pytest.raises(ValueError):
        sim.run()


def test_split_brain_hazard_demonstrable_without_fencing():
    """With require_fenced=False the unsafe read is permitted — this is
    the §III-A hazard the fencing requirement exists to prevent."""
    sim = Simulator()
    storage = SharedStorage(sim, StorageParams(bandwidth=1e9))
    storage.provision("mds1")
    log2 = storage.provision("mds2")

    def unsafe_reader(sim):
        records = yield from storage.read_remote_log("mds1", "mds2", require_fenced=False)
        return len(records)

    def concurrent_writer(sim):
        yield from log2.force(rec(RecordKind.COMMITTED))

    r = sim.process(unsafe_reader(sim))
    sim.process(concurrent_writer(sim))
    sim.run()
    # The read completed even though the owner was writing concurrently.
    assert r.ok


def test_fencing_controller_state():
    ctrl = FencingController()
    assert not ctrl.is_fenced("a")
    ctrl.fence("a")
    assert ctrl.is_fenced("a")
    assert ctrl.fenced_nodes == frozenset({"a"})
    ctrl.unfence("a")
    assert not ctrl.is_fenced("a")


def test_stonith_driver_powers_off_and_fences():
    sim = Simulator()
    ctrl = FencingController()
    powered_off = []
    driver = StonithDriver(sim, ctrl, power_off=powered_off.append, delay=0.05)

    def proc(sim):
        yield from driver.fence("mds1", "mds2")
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == pytest.approx(0.05)
    assert powered_off == ["mds2"]
    assert ctrl.is_fenced("mds2")


def test_resource_fencing_driver_fences_without_power_off():
    sim = Simulator()
    ctrl = FencingController()
    driver = ResourceFencingDriver(sim, ctrl, delay=0.02)

    def proc(sim):
        yield from driver.fence("mds1", "mds2")

    sim.process(proc(sim))
    sim.run()
    assert ctrl.is_fenced("mds2")
    assert sim.now == pytest.approx(0.02)


def test_persistent_reservation_driver_is_fast():
    sim = Simulator()
    ctrl = FencingController()
    driver = PersistentReservationDriver(sim, ctrl, delay=0.005)

    def proc(sim):
        yield from driver.fence("mds1", "mds2")

    sim.process(proc(sim))
    sim.run()
    assert ctrl.is_fenced("mds2")
    assert sim.now == pytest.approx(0.005)


def test_fenced_node_cannot_write_shared_partition():
    sim = Simulator()
    storage = SharedStorage(sim, StorageParams(bandwidth=1e9))
    log = storage.provision("mds2")
    storage.fencing.fence("mds2")

    def writer(sim):
        yield from log.force(rec(RecordKind.COMMITTED))

    sim.process(writer(sim))
    with pytest.raises(FencedError):
        sim.run()


def test_crash_and_restart_node_log_via_storage():
    sim = Simulator()
    storage = SharedStorage(sim, StorageParams(bandwidth=1e9))
    log = storage.provision("mds1")

    def phase1(sim):
        yield from log.force(rec(RecordKind.STARTED))

    sim.process(phase1(sim))
    sim.run()
    storage.crash_node_log("mds1")
    storage.restart_node_log("mds1")

    def phase2(sim):
        yield from log.force(rec(RecordKind.COMMITTED))

    sim.process(phase2(sim))
    sim.run()
    assert log.has(RecordKind.STARTED, 1) and log.has(RecordKind.COMMITTED, 1)
