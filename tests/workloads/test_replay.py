"""Trace-replay workload tests."""

import io
import json

import pytest

from repro.workloads.replay import (
    load_ops,
    run_replay,
    save_ops,
    synthetic_checkpoint_trace,
    validate_ops,
)

SIMPLE = [
    {"t": 0.0, "op": "mkdir", "path": "/dir1/run"},
    {"t": 0.001, "op": "create", "path": "/dir1/run/a"},
    {"t": 0.002, "op": "create", "path": "/dir1/run/b"},
    {"t": 0.003, "op": "rename", "path": "/dir1/run/a", "dst": "/dir1/run/a2"},
    {"t": 0.004, "op": "delete", "path": "/dir1/run/b"},
]


def test_validate_rejects_unknown_op():
    with pytest.raises(ValueError):
        validate_ops([{"t": 0, "op": "chmod", "path": "/x"}])


def test_validate_rejects_missing_path():
    with pytest.raises(ValueError):
        validate_ops([{"t": 0, "op": "create"}])


def test_validate_rejects_time_travel():
    with pytest.raises(ValueError):
        validate_ops(
            [
                {"t": 1.0, "op": "create", "path": "/a"},
                {"t": 0.5, "op": "create", "path": "/b"},
            ]
        )


def test_validate_rename_requires_dst():
    with pytest.raises(ValueError):
        validate_ops([{"t": 0, "op": "rename", "path": "/a"}])


def test_save_load_roundtrip():
    buffer = io.StringIO()
    save_ops(SIMPLE, buffer)
    buffer.seek(0)
    assert load_ops(buffer) == SIMPLE


def test_save_load_file_roundtrip(tmp_path):
    path = tmp_path / "ops.json"
    save_ops(SIMPLE, path)
    assert load_ops(path) == SIMPLE
    assert json.loads(path.read_text())  # plain JSON on disk


def test_closed_loop_replay_preserves_dependencies(protocol):
    result = run_replay(protocol, SIMPLE, closed_loop=True)
    assert result.committed == len(SIMPLE)
    cluster = result.cluster
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/run/a2") is not None
    assert cluster.lookup("/dir1/run/a") is None
    assert cluster.lookup("/dir1/run/b") is None


def test_open_loop_replay_of_independent_ops():
    ops = [
        {"t": 0.0, "op": "create", "path": f"/dir1/f{i}"} for i in range(10)
    ]
    result = run_replay("1PC", ops)
    assert result.committed == 10
    assert result.cluster.check_invariants() == []


def test_replay_skips_unplannable_ops():
    ops = [
        {"t": 0.0, "op": "delete", "path": "/dir1/never-existed"},
        {"t": 0.001, "op": "create", "path": "/dir1/real"},
    ]
    result = run_replay("1PC", ops, closed_loop=True)
    assert result.committed == 1
    assert result.cluster.lookup("/dir1/real") is not None


def test_synthetic_checkpoint_trace_valid_and_runs():
    ops = synthetic_checkpoint_trace(ranks=4, period=0.02, rounds=2)
    validate_ops(ops)
    result = run_replay("1PC", ops, closed_loop=True)
    assert result.cluster.check_invariants() == []
    # Round 1's checkpoints were deleted; round 2's survive.
    listing = result.cluster.listdir("/dir1/ckpt")
    assert set(listing) == {f"rank{r}.r1" for r in range(4)}


def test_replay_throughput_ordering_between_protocols():
    ops = synthetic_checkpoint_trace(ranks=6, period=0.01, rounds=2)
    prn = run_replay("PrN", ops, closed_loop=True)
    one = run_replay("1PC", ops, closed_loop=True)
    assert one.makespan < prn.makespan
