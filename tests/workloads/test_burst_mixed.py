"""Workload generators: burst, delete-burst, mixed, mdtest phases."""

import pytest

from repro.workloads import MixedWorkload, run_burst, run_mdtest_phases, run_mixed


def test_burst_create_all_commit():
    result = run_burst("1PC", n=20)
    assert result.committed == 20 and result.aborted == 0
    assert result.throughput > 0
    assert result.makespan > 0
    assert result.cluster.check_invariants() == []
    assert result.latency.count == 20


def test_burst_invalid_op_rejected():
    with pytest.raises(ValueError):
        run_burst("1PC", n=1, op="stat")


def test_burst_delete_measures_delete_phase():
    result = run_burst("1PC", n=10, op="delete")
    assert result.committed == 10
    # Everything deleted.
    assert result.cluster.listdir("/dir1") == {}
    assert result.cluster.check_invariants() == []


def test_burst_throughput_ordering_matches_figure6():
    """Even at a small burst the protocol ordering must hold."""
    tputs = {p: run_burst(p, n=30).throughput for p in ("PrN", "PrC", "EP", "1PC")}
    assert tputs["1PC"] > tputs["EP"] > tputs["PrC"] >= tputs["PrN"] * 0.999


def test_burst_latency_stats_sane():
    result = run_burst("PrN", n=15)
    stats = result.latency
    assert stats.minimum <= stats.p50 <= stats.p95 <= stats.maximum
    # Queueing behind the directory lock stretches the tail.
    assert stats.maximum > stats.minimum * 3


def test_mixed_workload_runs_clean():
    wl = MixedWorkload(n_ops=60, seed=3)
    result = run_mixed("1PC", wl)
    assert result.committed + result.aborted == 60
    # The vast majority commit (aborts only from benign plan races).
    assert result.committed >= 50
    assert result.cluster.check_invariants() == []


def test_mixed_workload_deterministic():
    wl = MixedWorkload(n_ops=40, seed=9)
    a = run_mixed("1PC", wl)
    b = run_mixed("1PC", wl)
    assert a.throughput == b.throughput
    assert a.committed == b.committed


def test_mixed_workload_validation():
    with pytest.raises(ValueError):
        MixedWorkload(n_ops=0)
    with pytest.raises(ValueError):
        MixedWorkload(create_weight=0, delete_weight=0, rename_weight=0)
    with pytest.raises(ValueError):
        MixedWorkload(mean_interarrival=0)


def test_mixed_all_protocols_consistent():
    wl = MixedWorkload(n_ops=40, seed=5)
    for protocol in ("PrN", "PrC", "EP", "1PC"):
        result = run_mixed(protocol, wl)
        assert result.cluster.check_invariants() == [], protocol


def test_mdtest_phases_create_then_delete():
    phases = run_mdtest_phases("1PC", n_files=12)
    assert set(phases) == {"create", "delete"}
    assert phases["create"] > 0 and phases["delete"] > 0
