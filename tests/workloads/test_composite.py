"""Composite workload tests: trace generation, execution modes,
partitioned byte-identity, and spec-identity preservation."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.exec.partition import run_partitioned_composite, run_partitioned_spec
from repro.exec.runners import composite_cell, execute_spec
from repro.exec.spec import RunSpec, derive_seed
from repro.workloads.composite import (
    HOT_DIR,
    CompositeConfig,
    composite_trace,
    group_ops,
    group_seed,
    run_composite,
    run_group_standalone,
)

SMALL = CompositeConfig(ops=240, groups=3, window=8, working_set=32)


def small_spec(protocol: str = "1PC") -> RunSpec:
    return RunSpec(
        kind="composite", protocol=protocol, n=SMALL.ops, point=SMALL.ops,
        composite=SMALL.to_json(),
    )


# -- config -------------------------------------------------------------------


def test_config_round_trips_through_canonical_json():
    config = CompositeConfig(ops=99, groups=3, hot_fraction=0.5, phases=(2.0, 0.5))
    assert CompositeConfig.from_json(config.to_json()) == config
    # Canonical form: sorted keys, no whitespace.
    text = config.to_json()
    assert " " not in text
    assert list(json.loads(text)) == sorted(json.loads(text))


def test_config_validation():
    with pytest.raises(ValueError):
        CompositeConfig(ops=0)
    with pytest.raises(ValueError):
        CompositeConfig(ops=2, groups=3)  # more groups than ops
    with pytest.raises(ValueError):
        CompositeConfig(mix=(("chmod", 1.0),))
    with pytest.raises(ValueError):
        CompositeConfig(mix=(("create", 0.0),))
    with pytest.raises(ValueError):
        CompositeConfig(cold_dirs=0, hot_fraction=0.5)
    with pytest.raises(ValueError):
        CompositeConfig(phases=())
    with pytest.raises(ValueError):
        CompositeConfig(phases=(1.0, -1.0))


def test_group_ops_partitions_exactly():
    config = CompositeConfig(ops=10, groups=3)
    shares = [group_ops(config, g) for g in range(3)]
    assert sum(shares) == 10
    assert shares == [4, 3, 3]  # remainder goes to the low groups


def test_group_seeds_are_distinct_and_stable():
    seeds = [group_seed(42, g) for g in range(4)]
    assert len(set(seeds)) == 4
    assert seeds == [group_seed(42, g) for g in range(4)]


# -- trace generator ----------------------------------------------------------


def test_trace_is_lazy_and_pure():
    config = CompositeConfig(ops=200, working_set=16)
    first = list(composite_trace(config, seed=7))
    second = list(composite_trace(config, seed=7))
    assert first == second
    assert len(first) == 200
    assert list(composite_trace(config, seed=8)) != first


def test_trace_live_set_stays_bounded():
    config = CompositeConfig(
        ops=500, working_set=8, mix=(("create", 1.0),), hot_fraction=1.0,
        cold_dirs=0,
    )
    live = 0
    for op in composite_trace(config, seed=1):
        if op["op"] == "create":
            live += 1
        elif op["op"] == "delete":
            live -= 1
        assert live <= 8  # creates beyond the cap become deletes


def test_trace_deletes_and_renames_only_target_live_files():
    config = CompositeConfig(ops=400, working_set=16)
    live = set()
    for op in composite_trace(config, seed=3):
        if op["op"] == "create":
            live.add(op["path"])
        elif op["op"] == "delete":
            assert op["path"] in live
            live.remove(op["path"])
        elif op["op"] == "rename":
            assert op["path"] in live
            # In-place rename: src and dst share a directory.
            assert op["dst"].rsplit("/", 1)[0] == op["path"].rsplit("/", 1)[0]
            live.remove(op["path"])
            live.add(op["dst"])
        assert len(live) <= config.working_set


def test_trace_targets_hot_directory_predominantly():
    config = CompositeConfig(ops=1000, hot_fraction=0.8)
    hot = sum(
        1 for op in composite_trace(config, seed=5)
        if op["path"].startswith(HOT_DIR)
    )
    assert 0.65 < hot / 1000 < 0.95


# -- execution ----------------------------------------------------------------


def test_small_composite_run_commits_and_reads():
    result = run_composite("1PC", SMALL)
    assert result.committed > 0
    assert result.reads > 0
    assert result.committed + result.aborted + result.skipped + result.reads == SMALL.ops
    assert result.throughput > 0
    assert result.events > 0
    assert result.latency.count == result.committed + result.aborted
    assert len(result.per_group) == SMALL.groups


def test_group_outcome_pickles():
    outcome = run_group_standalone("1PC", SMALL, small_spec().seeded_params(), 0)
    clone = pickle.loads(pickle.dumps(outcome))
    assert clone.committed == outcome.committed
    assert clone.latency.count == outcome.latency.count
    assert clone.latency.mean == outcome.latency.mean


def test_partitioned_serial_matches_single_kernel_byte_for_byte():
    spec = small_spec()
    single = execute_spec(spec)
    partitioned = run_partitioned_spec(spec, workers=1)
    assert json.dumps(single.to_dict(), sort_keys=True) == json.dumps(
        partitioned.to_dict(), sort_keys=True
    )


@pytest.mark.slow
def test_partitioned_pool_matches_single_kernel_byte_for_byte():
    spec = small_spec()
    single = execute_spec(spec)
    pooled = run_partitioned_spec(spec, workers=2)
    assert json.dumps(single.to_dict(), sort_keys=True) == json.dumps(
        pooled.to_dict(), sort_keys=True
    )


def test_partitioned_requires_composite_spec():
    burst = RunSpec(kind="burst", protocol="1PC", n=10)
    with pytest.raises(ValueError):
        run_partitioned_spec(burst)
    with pytest.raises(ValueError):
        run_partitioned_composite("1PC", SMALL, workers=0)


def test_composite_cell_detail_carries_read_latency():
    result = run_composite("1PC", SMALL, small_spec().seeded_params())
    cell = composite_cell(small_spec(), result)
    doc = cell.to_dict()
    assert doc["detail"]["groups"] == SMALL.groups
    assert doc["detail"]["reads"] == result.reads
    assert doc["detail"]["read_latency"]["count"] == result.reads
    assert doc["throughput"] == pytest.approx(result.throughput)


# -- identity preservation ----------------------------------------------------


def test_pre_existing_spec_documents_are_unchanged():
    # Specs without the new fields must serialise exactly as before
    # this PR: no "composite", "detail", or latency "mode" keys — the
    # goldens and every cache key stand.
    spec = RunSpec(kind="burst", protocol="1PC", n=50)
    doc = spec.to_dict()
    assert "composite" not in doc
    cell = execute_spec(spec)
    cell_doc = cell.to_dict()
    assert "detail" not in cell_doc
    assert "mode" not in cell_doc["latency"]


def test_composite_field_enters_spec_identity():
    base = small_spec()
    other = RunSpec(
        kind="composite", protocol="1PC", n=SMALL.ops, point=SMALL.ops,
        composite=CompositeConfig(ops=SMALL.ops, groups=1).to_json(),
    )
    assert base.to_dict()["composite"] == SMALL.to_json()
    assert derive_seed(base) != derive_seed(other)
