"""Hash-randomisation regression gate (the DET rules' runtime twin).

One Figure-6 burst cell, executed in two fresh interpreters with
different ``PYTHONHASHSEED`` values, must serialise to byte-identical
canonical JSON.  If any set iteration order ever leaks into the event
schedule (what DET003 guards statically), this is the test that
catches it end to end.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]

#: One cell of the Figure-6 grid (a burst run), dumped canonically.
_CELL_SCRIPT = """
import json
from repro.exec import RunSpec, execute_spec

spec = RunSpec(kind="burst", protocol="1PC", n=12, seed=5, point="hashseed-gate")
cell = execute_spec(spec)
print(json.dumps(cell.to_dict(), sort_keys=True, separators=(",", ":")))
"""


def _run_cell(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _CELL_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        timeout=180,
        check=True,
    )
    return result.stdout


def test_figure6_cell_is_byte_identical_across_hash_seeds():
    first = _run_cell("0")
    second = _run_cell("424242")
    assert first == second, "PYTHONHASHSEED leaked into the simulation results"
    # Sanity: the run did real work.
    doc = json.loads(first)
    assert doc["committed"] > 0
    assert doc["throughput"] > 0
