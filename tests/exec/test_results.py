"""Results-layer tests: JSON schema, canonical form, regression gate."""

import json

import pytest

from repro.exec import (
    cell_key,
    figure6_grid,
    load_results,
    run_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(figure6_grid(n=6, protocols=("PrN", "1PC")), kind="figure6", workers=1)


def test_document_schema(sweep):
    doc = sweep.to_dict()
    assert doc["schema_version"] == 1
    assert doc["kind"] == "figure6"
    assert isinstance(doc["git_rev"], str) and doc["git_rev"]
    assert set(doc["meta"]) == {"created_at", "wall_time_s", "workers", "cache"}
    # No cache attached to this sweep: every cell was computed.
    assert doc["meta"]["cache"] == {"cached": 0, "computed": 2}
    assert len(doc["cells"]) == 2
    cell = doc["cells"][0]
    assert cell["spec"]["protocol"] == "PrN"
    assert cell["committed"] == 6
    assert cell["throughput"] > 0
    assert cell["forced_writes"] > 0
    assert cell["latency"]["p50"] > 0


def test_canonical_form_drops_volatile_meta(sweep):
    doc = sweep.to_dict(canonical=True)
    assert "meta" not in doc
    # Canonical text is stable across serialisations.
    assert sweep.to_json(canonical=True) == sweep.to_json(canonical=True)


def test_round_trip_and_schema_check(tmp_path, sweep):
    path = tmp_path / "sweep.json"
    sweep.write_json(str(path))
    doc = load_results(str(path))
    assert len(doc["cells"]) == len(sweep.cells)

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema_version": 99, "cells": []}))
    with pytest.raises(ValueError, match="unsupported sweep-results schema"):
        load_results(str(bad))


def scratch_repo(path):
    """Init a git repo with one committed file; returns a git() helper."""
    import subprocess

    env = {
        "GIT_AUTHOR_NAME": "t",
        "GIT_AUTHOR_EMAIL": "t@example.com",
        "GIT_COMMITTER_NAME": "t",
        "GIT_COMMITTER_EMAIL": "t@example.com",
        "HOME": str(path),
        "PATH": __import__("os").environ["PATH"],
    }

    def git(*args):
        subprocess.run(["git", *args], cwd=path, env=env, check=True, capture_output=True)

    git("init", "-q")
    (path / "tracked.txt").write_text("v1\n", encoding="utf-8")
    git("add", "tracked.txt")
    git("commit", "-q", "-m", "seed")
    return git


def test_git_revision_marks_dirty_worktrees(tmp_path):
    from repro.exec import git_revision

    scratch_repo(tmp_path)
    clean = git_revision(cwd=str(tmp_path))
    assert len(clean) == 40 and int(clean, 16) >= 0

    # A modified tracked file flips the suffix on; reverting clears it.
    (tmp_path / "tracked.txt").write_text("v2\n", encoding="utf-8")
    assert git_revision(cwd=str(tmp_path)) == f"{clean}-dirty"
    (tmp_path / "tracked.txt").write_text("v1\n", encoding="utf-8")
    assert git_revision(cwd=str(tmp_path)) == clean

    # Untracked files are not "dirty": they cannot change any result.
    (tmp_path / "scratch.log").write_text("noise\n", encoding="utf-8")
    assert git_revision(cwd=str(tmp_path)) == clean


def test_git_revision_outside_a_repo_is_unknown(tmp_path):
    from repro.exec import git_revision

    outside = tmp_path / "plain"
    outside.mkdir()
    assert git_revision(cwd=str(outside)) == "unknown"


def test_cell_key_identifies_spec(sweep):
    keys = [cell_key(c.to_dict()) for c in sweep.cells]
    assert len(set(keys)) == len(keys)
    assert all("protocol" in k for k in keys)


def test_regression_gate_passes_and_fails(tmp_path, sweep):
    from benchmarks import check_regression

    base = tmp_path / "base.json"
    sweep.write_json(str(base), canonical=True)

    # Identical results: no problems.
    assert check_regression.compare(str(base), str(base), threshold=0.2) == []

    # A 30 % throughput drop trips the 20 % gate.
    doc = sweep.to_dict(canonical=True)
    doc["cells"][0]["throughput"] *= 0.7
    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps(doc), encoding="utf-8")
    problems = check_regression.compare(str(base), str(slow), threshold=0.2)
    assert len(problems) == 1 and "regression" in problems[0]

    # A missing cell is also a failure.
    doc2 = sweep.to_dict(canonical=True)
    doc2["cells"] = doc2["cells"][1:]
    partial = tmp_path / "partial.json"
    partial.write_text(json.dumps(doc2), encoding="utf-8")
    problems = check_regression.compare(str(base), str(partial), threshold=0.2)
    assert any("missing" in p for p in problems)

    assert check_regression.main(
        ["--baseline", str(base), "--current", str(base)]
    ) == 0
    assert check_regression.main(
        ["--baseline", str(base), "--current", str(slow), "--threshold", "0.2"]
    ) == 1
