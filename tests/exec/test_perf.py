"""Perf-suite tests: the cache-warm workload and the document schema."""

from __future__ import annotations

from repro.exec.perf import (
    DEFAULT_SKIP,
    PERF_SCHEMA_VERSION,
    WORKLOADS,
    PerfResults,
    _run_figure6_warm,
    _run_million_txn,
    peak_rss_kb,
    run_perf,
)


def test_figure6_warm_is_a_pinned_workload():
    assert PERF_SCHEMA_VERSION == 3
    assert "figure6-warm" in WORKLOADS


def test_million_txn_is_pinned_but_opt_in():
    assert "million-txn" in WORKLOADS
    assert "million-txn" in DEFAULT_SKIP


def test_peak_rss_watermark_is_positive_and_monotone():
    first = peak_rss_kb()
    assert first["self"] > 0
    ballast = [0.0] * 2_000_000  # ~16 MB: push the watermark up
    second = peak_rss_kb()
    del ballast
    assert second["self"] >= first["self"]
    # High watermark: releasing the ballast must not lower it.
    assert peak_rss_kb()["self"] >= second["self"]


def test_million_txn_scaled_down_records_rss_ratio():
    # The real workload runs minutes; exercise the same code path at
    # 1/1000 scale and relax only the absolute committed-count floor.
    run = _run_million_txn(ops=1_500, groups=2)
    try:
        run()
        raise AssertionError("1,500 ops cannot commit a million transactions")
    except RuntimeError as exc:
        assert "needs >= 1,000,000" in str(exc)


def test_figure6_warm_measures_cold_and_warm_pair():
    run = _run_figure6_warm(n=10, protocols=("1PC", "EP"))()
    assert run.name == "figure6-warm"
    assert run.txns == 2 * 10  # every create commits in both cells
    assert run.sim_time > 0
    detail = run.detail
    assert detail["cells"] == 2
    assert detail["cold_wall_s"] > 0 and detail["warm_wall_s"] > 0
    # The whole point: serving from disk beats recomputing.
    assert detail["speedup"] > 1.0
    assert detail["speedup"] == detail["cold_wall_s"] / detail["warm_wall_s"]


def test_figure6_warm_simulation_facts_are_deterministic():
    a = _run_figure6_warm(n=8, protocols=("1PC",))()
    b = _run_figure6_warm(n=8, protocols=("1PC",))()
    assert (a.events, a.txns, a.sim_time) == (b.events, b.txns, b.sim_time)


def test_perf_document_schema_carries_both_wall_clocks():
    results = run_perf(workloads=["figure6-warm"], repeats=1)
    doc = results.to_dict()
    assert doc["schema_version"] == PERF_SCHEMA_VERSION
    assert isinstance(results, PerfResults)
    (workload,) = doc["workloads"]
    assert workload["name"] == "figure6-warm"
    assert workload["detail"]["cold_wall_s"] > workload["detail"]["warm_wall_s"] > 0
    # Schema v3: the document reports the process's RSS watermark.
    assert doc["peak_rss_kb"]["self"] > 0


def test_default_run_skips_the_scale_workload():
    results = run_perf(workloads=["kernel-churn"], repeats=1)
    assert [w.name for w in results.workloads] == ["kernel-churn"]
    # And the default (workloads=None) name list excludes million-txn.
    defaults = [n for n in WORKLOADS if n not in DEFAULT_SKIP]
    assert "million-txn" not in defaults and len(defaults) == len(WORKLOADS) - 1
