"""Perf-suite tests: the cache-warm workload and the document schema."""

from __future__ import annotations

from repro.exec.perf import (
    PERF_SCHEMA_VERSION,
    WORKLOADS,
    PerfResults,
    _run_figure6_warm,
    run_perf,
)


def test_figure6_warm_is_a_pinned_workload():
    assert PERF_SCHEMA_VERSION == 2
    assert "figure6-warm" in WORKLOADS


def test_figure6_warm_measures_cold_and_warm_pair():
    run = _run_figure6_warm(n=10, protocols=("1PC", "EP"))()
    assert run.name == "figure6-warm"
    assert run.txns == 2 * 10  # every create commits in both cells
    assert run.sim_time > 0
    detail = run.detail
    assert detail["cells"] == 2
    assert detail["cold_wall_s"] > 0 and detail["warm_wall_s"] > 0
    # The whole point: serving from disk beats recomputing.
    assert detail["speedup"] > 1.0
    assert detail["speedup"] == detail["cold_wall_s"] / detail["warm_wall_s"]


def test_figure6_warm_simulation_facts_are_deterministic():
    a = _run_figure6_warm(n=8, protocols=("1PC",))()
    b = _run_figure6_warm(n=8, protocols=("1PC",))()
    assert (a.events, a.txns, a.sim_time) == (b.events, b.txns, b.sim_time)


def test_perf_document_schema_carries_both_wall_clocks():
    results = run_perf(workloads=["figure6-warm"], repeats=1)
    doc = results.to_dict()
    assert doc["schema_version"] == PERF_SCHEMA_VERSION
    assert isinstance(results, PerfResults)
    (workload,) = doc["workloads"]
    assert workload["name"] == "figure6-warm"
    assert workload["detail"]["cold_wall_s"] > workload["detail"]["warm_wall_s"] > 0
