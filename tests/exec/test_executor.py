"""Executor tests: parallel/serial equivalence, deterministic seeding,
spec-order merge and worker-failure propagation."""

import json
import os

import pytest

from repro.exec import (
    CellResult,
    ExperimentError,
    RunSpec,
    derive_seed,
    execute_spec,
    figure6_grid,
    host_trace_log,
    network_latency_grid,
    register_runner,
    run_grid,
    scaling_grid,
)
from repro.sim.monitor import Monitor


def small_grid():
    return figure6_grid(n=8, protocols=("PrN", "1PC")) + network_latency_grid(
        [100e-6, 1e-3], protocols=("1PC",), n=6
    )


def cells_json(cells):
    return json.dumps([c.to_dict() for c in cells], sort_keys=True)


def test_parallel_is_bit_identical_to_serial():
    specs = small_grid()
    serial = run_grid(specs, workers=1)
    parallel = run_grid(specs, workers=4)
    assert cells_json(serial) == cells_json(parallel)


def test_results_merge_in_spec_order():
    specs = small_grid()
    cells = run_grid(specs, workers=4)
    assert [c.spec for c in cells] == specs


def test_repeated_runs_are_deterministic():
    specs = scaling_grid("1PC", pair_counts=(1, 2), ops_per_dir=6)
    first = run_grid(specs, workers=2)
    second = run_grid(specs, workers=2)
    assert cells_json(first) == cells_json(second)


def test_derived_seed_depends_on_spec_not_order():
    a = RunSpec(kind="burst", protocol="1PC", n=10)
    b = RunSpec(kind="burst", protocol="1PC", n=10)
    c = RunSpec(kind="burst", protocol="1PC", n=11)
    d = RunSpec(kind="burst", protocol="1PC", n=10, seed=1)
    assert derive_seed(a) == derive_seed(b)
    assert derive_seed(a) != derive_seed(c)
    assert derive_seed(a) != derive_seed(d)


def test_derived_seed_is_applied_to_simulation():
    spec = RunSpec(kind="burst", protocol="1PC", n=5)
    cell = execute_spec(spec)
    assert cell.derived_seed == derive_seed(spec)


def test_invalid_spec_rejected():
    with pytest.raises(ValueError):
        RunSpec(kind="burst", protocol="1PC", n=0)
    with pytest.raises(ValueError):
        RunSpec(kind="abort_burst", protocol="1PC", abort_rate=1.5)
    with pytest.raises(ValueError):
        run_grid([RunSpec(kind="burst", protocol="1PC", n=5)], workers=0)


def test_unknown_kind_raises_serial():
    with pytest.raises(ExperimentError, match="no runner registered"):
        run_grid([RunSpec(kind="nonesuch", protocol="1PC", n=5)], workers=1)


def test_runner_exception_propagates_serial():
    with pytest.raises(ExperimentError, match="unknown protocol"):
        run_grid([RunSpec(kind="burst", protocol="NOPE", n=5)], workers=1)


def test_runner_exception_propagates_parallel():
    specs = [
        RunSpec(kind="burst", protocol="1PC", n=5),
        RunSpec(kind="burst", protocol="NOPE", n=5),
    ]
    with pytest.raises(ExperimentError, match="unknown protocol"):
        run_grid(specs, workers=2)


def _exit_runner(spec, keep_cluster):
    os._exit(17)  # pragma: no cover - dies before returning


def test_worker_process_death_propagates():
    # Registered runners reach pool workers via fork on Linux.
    register_runner("die", _exit_runner)
    specs = [
        RunSpec(kind="die", protocol="1PC", n=1),
        RunSpec(kind="die", protocol="1PC", n=2),
    ]
    with pytest.raises(ExperimentError, match="worker process died"):
        run_grid(specs, workers=2)


def test_progress_trace_and_monitor_reporting():
    events = []
    trace = host_trace_log()
    monitor = Monitor("cell-seconds")
    specs = figure6_grid(n=5, protocols=("1PC", "EP"))
    run_grid(specs, workers=1, progress=events.append, trace=trace, monitor=monitor)
    assert [e.done for e in events] == [1, 2]
    assert {e.spec.protocol for e in events} == {"1PC", "EP"}
    assert trace.count("exec", event="grid_start") == 1
    assert trace.count("exec", event="cell_done") == 2
    assert trace.count("exec", event="grid_done") == 1
    assert len(monitor) == 2 and monitor.mean >= 0.0


def test_payload_stripped_in_parallel_kept_in_serial():
    specs = figure6_grid(n=5, protocols=("1PC",))
    serial = run_grid(specs, workers=1, keep_clusters=True)
    assert serial[0].payload.cluster is not None
    parallel = run_grid(specs + figure6_grid(n=6, protocols=("1PC",)), workers=2)
    assert all(c.payload.cluster is None for c in parallel)


def failing_grid():
    return [
        RunSpec(kind="burst", protocol="1PC", n=5),
        RunSpec(kind="burst", protocol="NOPE", n=5),
    ]


def assert_no_partial_entries(root):
    """The cache holds only complete, servable documents — no debris."""
    assert list(root.rglob("*.tmp")) == []
    for path in root.rglob("*.json"):
        json.loads(path.read_text(encoding="utf-8"))  # must parse whole


def test_failed_serial_grid_names_spec_and_leaves_no_partial_entry(tmp_path):
    from repro.cache import ResultCache

    cache = ResultCache(root=tmp_path / "cache")
    with pytest.raises(ExperimentError, match=r"spec 1 \(.*NOPE.*\) failed"):
        run_grid(failing_grid(), workers=1, cache=cache)
    assert_no_partial_entries(tmp_path / "cache")
    # The cell that completed before the failure was still written through.
    assert len(cache.entries()) == 1


def test_failed_pooled_grid_names_spec_and_leaves_no_partial_entry(tmp_path):
    from repro.cache import ResultCache

    cache = ResultCache(root=tmp_path / "cache")
    with pytest.raises(ExperimentError, match=r"spec 1 \(.*NOPE.*\) failed in worker"):
        run_grid(failing_grid(), workers=2, cache=cache)
    assert_no_partial_entries(tmp_path / "cache")


def test_dead_worker_names_spec_and_leaves_no_partial_entry(tmp_path):
    from repro.cache import ResultCache

    register_runner("die", _exit_runner)
    cache = ResultCache(root=tmp_path / "cache")
    specs = [
        RunSpec(kind="die", protocol="1PC", n=1),
        RunSpec(kind="die", protocol="1PC", n=2),
    ]
    with pytest.raises(ExperimentError, match=r"worker process died.*first unfinished spec"):
        run_grid(specs, workers=2, cache=cache)
    assert_no_partial_entries(tmp_path / "cache")
    assert cache.entries() == []


def test_cell_result_counts_forced_writes():
    cell = execute_spec(RunSpec(kind="burst", protocol="1PC", n=4))
    assert isinstance(cell, CellResult)
    # 1PC: 3 forced writes per distributed create (Table I) plus the
    # mkdir provisioning write.
    assert cell.forced_writes > 0
    assert cell.committed == 4
