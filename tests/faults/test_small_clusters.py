"""Regression tests: random_fault_plan on degenerate cluster sizes.

The generator used to crash on single-node lists (the link-fault
branch drew from an empty peer pool) and could partition the only
node, stalling the whole run until the heal.
"""

import pytest

from repro.faults import CrashFault, LinkFault, PartitionFault, VoteRefusalFault
from repro.faults.scenarios import random_fault_plan


def test_single_node_plan_builds():
    for seed in range(20):
        plan = random_fault_plan(seed, ["mds1"], n_faults=5)
        assert len(plan.faults) == 5
        for fault in plan.faults:
            # Only kinds that make sense with one node.
            assert isinstance(fault, (CrashFault, VoteRefusalFault))
            assert not isinstance(fault, (LinkFault, PartitionFault))


def test_empty_node_list_rejected():
    with pytest.raises(ValueError, match="at least one node"):
        random_fault_plan(0, [])


def test_single_node_without_coordinator_crash_rejected():
    with pytest.raises(ValueError, match="no crash victims"):
        random_fault_plan(0, ["mds1"], allow_coordinator_crash=False)


def test_multi_node_draws_unchanged():
    """The small-cluster guard must not perturb existing ≥2-node plans."""
    def fingerprint(plan):
        return [
            (
                type(f).__name__,
                f.at,
                getattr(f, "node", None),
                getattr(f, "a", None),
                getattr(f, "b", None),
                getattr(f, "groups", None),
            )
            for f in plan.faults
        ]

    a = random_fault_plan(7, ["mds1", "mds2"], n_faults=4)
    b = random_fault_plan(7, ["mds1", "mds2"], n_faults=4)
    assert fingerprint(a) == fingerprint(b)
    # Per-index RNG streams: a shorter plan is a prefix of a longer one.
    short = random_fault_plan(7, ["mds1", "mds2"], n_faults=2)
    assert fingerprint(short) == fingerprint(a)[:2]
    # All four kinds remain reachable across seeds on two nodes.
    kinds = set()
    for seed in range(40):
        plan = random_fault_plan(seed, ["mds1", "mds2"], n_faults=3)
        kinds.update(type(f).__name__ for f in plan.faults)
    assert kinds == {
        "CrashFault",
        "PartitionFault",
        "LinkFault",
        "VoteRefusalFault",
    }
