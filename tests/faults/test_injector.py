"""Unit tests for fault actions and schedules."""

import pytest

from repro.faults import (
    CrashFault,
    DiskStallFault,
    FaultPlan,
    LinkFault,
    PartitionFault,
    VoteRefusalFault,
    scenario,
)
from tests.protocols.conftest import drain, make_cluster, run_create


def test_fault_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        CrashFault(node="mds1")
    with pytest.raises(ValueError):
        CrashFault(node="mds1", at=1.0, when=lambda t: True)


def test_crash_fault_requires_node():
    with pytest.raises(ValueError):
        CrashFault(at=1.0)


def test_partition_fault_requires_groups():
    with pytest.raises(ValueError):
        PartitionFault(at=1.0)


def test_link_fault_requires_endpoints():
    with pytest.raises(ValueError):
        LinkFault(at=1.0, a="mds1")


def test_vote_refusal_requires_node():
    with pytest.raises(ValueError):
        VoteRefusalFault(at=1.0)


def test_timed_crash_fires_and_restarts():
    cluster, client = make_cluster("1PC")
    plan = FaultPlan([CrashFault(node="mds2", at=1e-3, restart_after=0.05)])
    plan.install(cluster)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=cluster.sim.now + 120.0)
    assert plan.all_fired
    assert cluster.trace.count("crash", actor="mds2") >= 1
    assert not cluster.servers["mds2"].crashed
    assert cluster.check_invariants() == []


def test_crash_without_restart():
    cluster, _client = make_cluster("1PC")
    plan = FaultPlan([CrashFault(node="mds2", at=1e-3, restart_after=float("inf"))])
    plan.install(cluster)
    cluster.sim.run(until=1.0)
    assert cluster.servers["mds2"].crashed


def test_trace_triggered_crash():
    cluster, client = make_cluster("1PC")
    plan = FaultPlan(
        [
            CrashFault(
                node="mds2",
                when=lambda t: t.count("msg_recv", kind="UPDATE_REQ") > 0,
            )
        ]
    )
    plan.install(cluster)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=cluster.sim.now + 120.0)
    assert plan.all_fired
    # The crash happened after the worker had received the request.
    crash_time = cluster.trace.select("crash", actor="mds2")[0].time
    recv_time = cluster.trace.select("msg_recv", kind="UPDATE_REQ")[0].time
    assert crash_time >= recv_time
    assert cluster.check_invariants() == []


def test_partition_fault_heals():
    cluster, client = make_cluster("1PC")
    plan = FaultPlan(
        [PartitionFault(groups=[frozenset({"mds2"})], heal_after=0.5, at=1e-3)]
    )
    plan.install(cluster)
    cluster.sim.run(until=0.1)
    assert not cluster.network.connected("mds1", "mds2")
    cluster.sim.run(until=0.6)
    assert cluster.network.connected("mds1", "mds2")


def test_link_fault_restores():
    cluster, _client = make_cluster("1PC")
    plan = FaultPlan([LinkFault(a="mds1", b="mds2", restore_after=0.5, at=1e-3)])
    plan.install(cluster)
    cluster.sim.run(until=0.1)
    assert not cluster.network.connected("mds1", "mds2")
    cluster.sim.run(until=0.7)
    assert cluster.network.connected("mds1", "mds2")


def test_vote_refusal_fault_aborts_next_txn():
    cluster, client = make_cluster("1PC")
    FaultPlan([VoteRefusalFault(node="mds2", at=0.0)]).install(cluster)
    result = run_create(cluster, client)
    assert result["committed"] is False
    drain(cluster)
    assert cluster.check_invariants() == []


def test_disk_stall_fault_requires_node_and_duration():
    with pytest.raises(ValueError):
        DiskStallFault(at=1.0)
    with pytest.raises(ValueError):
        DiskStallFault(node="mds2", duration=0.0, at=1.0)


def test_disk_stall_fault_delays_wal_traffic():
    cluster, client = make_cluster("1PC")
    FaultPlan([DiskStallFault(node="mds2", duration=2.0, at=1e-3)]).install(cluster)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=cluster.sim.now + 300.0)
    stalls = cluster.trace.select("disk_stall")
    assert len(stalls) == 1
    assert stalls[0].get("duration") == 2.0
    assert cluster.check_invariants() == []


def test_past_at_rejected_at_install():
    cluster, _client = make_cluster("1PC")
    cluster.sim.run(until=1.0)
    plan = FaultPlan([CrashFault(node="mds2", at=0.5)])
    with pytest.raises(ValueError) as excinfo:
        plan.install(cluster)
    # The error names the stale fault and the current clock.
    assert "CrashFault(at=0.5)" in str(excinfo.value)
    assert "sim time is already 1" in str(excinfo.value)
    assert not plan.installed


def test_at_equal_to_now_still_allowed():
    # The vote-refusal scenario arms at t=0 on a fresh cluster; an
    # at==now fault must keep installing fine.
    cluster, client = make_cluster("1PC")
    FaultPlan([VoteRefusalFault(node="mds2", at=0.0)]).install(cluster)
    result = run_create(cluster, client)
    assert result["committed"] is False


def test_double_install_rejected():
    cluster, _client = make_cluster("1PC")
    plan = FaultPlan([CrashFault(node="mds2", at=1.0)])
    plan.install(cluster)
    with pytest.raises(RuntimeError):
        plan.install(cluster)


def test_fault_emits_trace_record():
    cluster, _client = make_cluster("1PC")
    FaultPlan([CrashFault(node="mds2", at=1e-3)]).install(cluster)
    cluster.sim.run(until=0.01)
    faults = cluster.trace.select("fault")
    assert len(faults) == 1
    assert "CrashFault" in faults[0].get("fault")


def test_named_scenarios_construct():
    for name in (
        "worker-crash-before-commit",
        "worker-crash-after-prepare",
        "coordinator-crash-after-start",
        "partition-at-vote",
        "flaky-link",
        "vote-refusal",
    ):
        plan = scenario(name)
        assert isinstance(plan, FaultPlan)
        assert plan.faults


def test_unknown_scenario_rejected():
    with pytest.raises(KeyError):
        scenario("meteor-strike")


@pytest.mark.parametrize(
    "name",
    [
        "worker-crash-before-commit",
        "worker-crash-after-prepare",
        "coordinator-crash-after-start",
        "partition-at-vote",
        "vote-refusal",
    ],
)
def test_every_scenario_preserves_atomicity(protocol, name):
    """Each named scenario, against each protocol: consistent end state."""
    cluster, client = make_cluster(protocol)
    scenario(name).install(cluster)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == [], (protocol, name)
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0), (protocol, name)
