"""Replay the committed golden minimal repro.

``golden_minimal_repro.json`` was produced by the campaign shrinker
from the early-vote mutation (``tests.campaign.broken``): one crash in
the worker's vote-to-force window, one operation, one client.  Keeping
it in the tree pins two things: the repro document format stays
loadable, and the shrunk schedule still tears the transaction on the
broken engine.
"""

import pathlib

from repro.campaign.schedule import CampaignSchedule
from repro.campaign.shrink import load_repro, replay_repro, violation_kinds
from repro.protocols.registry import temporary_protocol
from tests.campaign.broken import broken_spec

GOLDEN = pathlib.Path(__file__).parent / "golden_minimal_repro.json"


def test_golden_repro_is_minimal():
    doc = load_repro(str(GOLDEN))
    schedule = CampaignSchedule.from_json(doc["spec"]["campaign"])
    assert len(schedule.faults) == 1
    assert schedule.n_ops == 1
    assert schedule.n_clients == 1
    (fault,) = schedule.faults
    assert fault.kind == "crash"
    assert fault.trigger is not None
    assert fault.trigger.category == "msg_send"


def test_golden_repro_replays():
    doc = load_repro(str(GOLDEN))
    with temporary_protocol(broken_spec()):
        cell, reproduced = replay_repro(doc)
    assert reproduced
    assert "atomicity" in violation_kinds(cell)
