"""Torture tests: random fault schedules over concurrent workloads.

The strongest correctness statement in the suite: for a battery of
seeded random fault plans (crashes with restarts, partitions that heal,
link flaps, vote refusals) injected into a burst of concurrent
distributed creates, the durable namespace must stay consistent — no
orphaned inodes, no dangling dentries — and every transaction must be
all-or-nothing once the dust settles.
"""

import pytest

from repro.faults import random_fault_plan
from repro.harness.scenarios import distributed_create_cluster

pytestmark = pytest.mark.slow


def run_torture(protocol, seed, n_ops=12, n_faults=3):
    cluster, client = distributed_create_cluster(protocol, trace=True)
    plan = random_fault_plan(
        seed,
        nodes=["mds1", "mds2"],
        horizon=0.1,
        n_faults=n_faults,
    )
    plan.install(cluster)
    for i in range(n_ops):
        client.submit(client.plan_create(f"/dir1/t{i}"))
    # Long settle: reboots, healed partitions and decision queries all
    # need to play out (timeout ladders reach ~12 s of virtual time).
    cluster.sim.run(until=cluster.sim.now + 300.0)
    return cluster


def assert_all_or_nothing(cluster):
    """Every created inode is referenced; every dentry's inode exists."""
    violations = cluster.check_invariants()
    assert violations == [], violations
    dentries = cluster.store_of("mds1").stable_directories.get("/dir1", {})
    inodes = set(cluster.store_of("mds2").stable_inodes)
    assert set(dentries.values()) == inodes


@pytest.mark.parametrize("seed", range(10))
def test_torture_1pc(seed):
    cluster = run_torture("1PC", seed)
    assert_all_or_nothing(cluster)


@pytest.mark.parametrize("seed", range(5))
def test_torture_prn(seed):
    cluster = run_torture("PrN", seed)
    assert_all_or_nothing(cluster)


@pytest.mark.parametrize("seed", range(5))
def test_torture_prc(seed):
    cluster = run_torture("PrC", seed)
    assert_all_or_nothing(cluster)


@pytest.mark.parametrize("seed", range(5))
def test_torture_ep(seed):
    cluster = run_torture("EP", seed)
    assert_all_or_nothing(cluster)


@pytest.mark.parametrize("seed", [100, 101, 102])
def test_torture_heavy_faults(protocol, seed):
    """Five faults over a dozen transactions."""
    cluster = run_torture(protocol, seed, n_ops=12, n_faults=5)
    assert_all_or_nothing(cluster)


def run_torture_mixed(protocol, seed, n_faults=3):
    """Mixed mkdir/create/delete/rmdir stream under random faults."""
    cluster, client = distributed_create_cluster(protocol, trace=True)
    plan = random_fault_plan(seed, nodes=["mds1", "mds2"], horizon=0.15, n_faults=n_faults)
    plan.install(cluster)

    def driver(sim):
        ops = [
            ("mkdir", "/dir1/sub"),
            ("create", "/dir1/a"),
            ("create", "/dir1/sub/b"),
            ("create", "/dir1/sub/c"),
            ("delete", "/dir1/sub/b"),
            ("delete", "/dir1/sub/c"),
            ("rmdir", "/dir1/sub"),
            ("create", "/dir1/d"),
            ("delete", "/dir1/a"),
        ]
        for op, path in ops:
            try:
                if op == "mkdir":
                    yield from client.mkdir(path, timeout=30.0)
                elif op == "create":
                    yield from client.create(path, timeout=30.0)
                elif op == "delete":
                    yield from client.delete(path, timeout=30.0)
                else:
                    yield from client.rmdir(path, timeout=30.0)
            except (FileNotFoundError, Exception):
                # Aborts / crashes surface as missing files or reply
                # timeouts; the driver carries on like a real client.
                continue

    cluster.sim.process(driver(cluster.sim), name="mixed-torture")
    cluster.sim.run(until=cluster.sim.now + 400.0)
    return cluster


@pytest.mark.parametrize("seed", range(8))
def test_torture_mixed_ops_1pc(seed):
    cluster = run_torture_mixed("1PC", seed)
    assert cluster.check_invariants() == []


@pytest.mark.parametrize("protocol_name", ["PrN", "PrC", "EP", "PrA"])
@pytest.mark.parametrize("seed", [0, 3, 7])
def test_torture_mixed_ops_2pc_family(protocol_name, seed):
    cluster = run_torture_mixed(protocol_name, seed)
    assert cluster.check_invariants() == []


def test_torture_is_deterministic():
    a = run_torture("1PC", seed=3)
    b = run_torture("1PC", seed=3)
    sig_a = [(r.time, r.category, r.actor) for r in a.trace.records]
    sig_b = [(r.time, r.category, r.actor) for r in b.trace.records]
    assert sig_a == sig_b
