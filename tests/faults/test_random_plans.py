"""Properties of the random fault-plan generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import random_fault_plan
from repro.faults.injector import CrashFault, LinkFault, PartitionFault, VoteRefusalFault

import pytest

pytestmark = pytest.mark.slow

NODES = ["mds1", "mds2", "mds3"]


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=8))
@settings(max_examples=80)
def test_random_plan_is_well_formed(seed, n_faults):
    plan = random_fault_plan(seed, NODES, horizon=1.0, n_faults=n_faults)
    assert len(plan.faults) == n_faults
    for fault in plan.faults:
        assert fault.at is not None
        assert 0.1 <= fault.at <= 1.0
        if isinstance(fault, CrashFault):
            assert fault.node in NODES
            assert fault.restart_after is None or fault.restart_after > 0
        elif isinstance(fault, PartitionFault):
            assert all(node in NODES for group in fault.groups for node in group)
            assert fault.heal_after is None or fault.heal_after > 0
        elif isinstance(fault, LinkFault):
            assert fault.a in NODES and fault.b in NODES and fault.a != fault.b
        else:
            assert isinstance(fault, VoteRefusalFault)
            assert fault.node in NODES


@given(st.integers(min_value=0, max_value=10_000))
def test_random_plan_is_deterministic_per_seed(seed):
    a = random_fault_plan(seed, NODES, n_faults=4)
    b = random_fault_plan(seed, NODES, n_faults=4)
    assert [f.describe() for f in a.faults] == [f.describe() for f in b.faults]
    assert [type(f) for f in a.faults] == [type(f) for f in b.faults]


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=30)
def test_random_plan_without_coordinator_crashes(seed):
    plan = random_fault_plan(
        seed, NODES, n_faults=6, allow_coordinator_crash=False
    )
    for fault in plan.faults:
        if isinstance(fault, CrashFault):
            assert fault.node != NODES[0]
