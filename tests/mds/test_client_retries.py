"""Client-side resubmission of aborted transactions."""

from tests.protocols.conftest import drain, make_cluster


def test_retry_succeeds_after_single_refusal(protocol):
    cluster, client = make_cluster(protocol)
    cluster.servers["mds2"].fail_next_vote = True

    def scenario(sim):
        result = yield from client.run_with_retries(
            lambda: client.plan_create("/dir1/f0"), max_retries=3
        )
        return result

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["committed"] is True
    assert p.value["attempts"] == 2
    drain(cluster)
    assert cluster.check_invariants() == []


def test_retry_gives_up_after_max_retries():
    cluster, client = make_cluster("1PC")
    worker = cluster.servers["mds2"]

    # Refuse every vote by re-arming the hook whenever it is consumed.
    class AlwaysRefuse:
        def __get__(self, obj, objtype=None):
            return True

        def __set__(self, obj, value):
            pass

    type(worker).fail_next_vote = AlwaysRefuse()
    try:
        def scenario(sim):
            result = yield from client.run_with_retries(
                lambda: client.plan_create("/dir1/f0"), max_retries=2
            )
            return result

        p = cluster.sim.process(scenario(cluster.sim))
        cluster.sim.run(until=p)
        assert p.value["committed"] is False
        assert p.value["attempts"] == 3  # initial + 2 retries
    finally:
        del type(worker).fail_next_vote
        worker.fail_next_vote = False
    drain(cluster)
    assert cluster.check_invariants() == []


def test_retry_backoff_spaces_attempts():
    cluster, client = make_cluster("1PC")
    cluster.servers["mds2"].fail_next_vote = True

    def scenario(sim):
        start = sim.now
        result = yield from client.run_with_retries(
            lambda: client.plan_create("/dir1/f0"), max_retries=2, backoff=0.5
        )
        return result, sim.now - start

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    result, elapsed = p.value
    assert result["committed"] is True and result["attempts"] == 2
    assert elapsed > 0.5


def test_stale_fire_and_forget_reply_does_not_poison_run():
    """Regression: a fire-and-forget submission leaves its reply in the
    client's mailbox; a later run() on the same path must match its own
    reply (by request id), not the stale one."""
    cluster, client = make_cluster("1PC")
    cluster.servers["mds2"].fail_next_vote = True
    # Fire-and-forget; this attempt aborts and its reply is never read.
    client.submit(client.plan_create("/dir1/same"))
    while len(cluster.outcomes) < 1:
        cluster.sim.step()
    assert not cluster.outcomes[0].committed

    def second(sim):
        result = yield from client.run(client.plan_create("/dir1/same"))
        return result

    p = cluster.sim.process(second(cluster.sim))
    cluster.sim.run(until=p)
    # Without request-id matching this returned the stale abort.
    assert p.value["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []


def test_retry_replans_each_attempt():
    """The factory runs per attempt, so inode numbers are fresh."""
    cluster, client = make_cluster("1PC")
    cluster.servers["mds2"].fail_next_vote = True
    inos = []

    def factory():
        plan = client.plan_create("/dir1/f0")
        inos.append(plan.detail["ino"])
        return plan

    def scenario(sim):
        result = yield from client.run_with_retries(factory, max_retries=2)
        return result

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["committed"] is True
    assert len(inos) == 2 and inos[0] != inos[1]
    drain(cluster)
    # The aborted attempt's inode never materialised.
    assert set(cluster.store_of("mds2").stable_inodes) == {inos[1]}
