"""MDS server internals: sessions, spawn tracking, routing, recovery gate."""

from repro.net.message import Message
from repro.protocols.base import MsgKind
from tests.protocols.conftest import drain, make_cluster, run_create


def test_open_session_is_idempotent():
    cluster, _ = make_cluster("1PC")
    server = cluster.servers["mds1"]
    inbox = server.open_session(7)
    assert server.open_session(7) is inbox
    assert server.session_inbox(7) is inbox
    server.close_session(7)
    assert server.session_inbox(7) is None
    server.close_session(7)  # idempotent


def test_spawn_tracks_and_untracks_processes():
    cluster, _ = make_cluster("1PC")
    server = cluster.servers["mds1"]

    def proc(sim):
        yield sim.timeout(0.5)

    p = server.spawn(proc(cluster.sim))
    assert p in server._procs
    cluster.sim.run(until=1.0)
    assert p not in server._procs


def test_crash_kills_tracked_processes():
    cluster, _ = make_cluster("1PC")
    server = cluster.servers["mds1"]
    log = []

    def proc(sim):
        try:
            yield sim.timeout(10.0)
            log.append("survived")
        finally:
            log.append("cleanup")

    server.spawn(proc(cluster.sim))
    cluster.sim.run(until=0.1)
    server.crash()
    cluster.sim.run(until=1.0)
    assert log == ["cleanup"]
    assert server._procs == set()
    assert server._sessions == {}


def test_sessions_cleared_on_crash():
    cluster, _ = make_cluster("1PC")
    server = cluster.servers["mds1"]
    server.open_session(3)
    server.crash()
    assert server.session_inbox(3) is None


def test_messages_to_open_session_are_routed():
    cluster, _ = make_cluster("1PC")
    server = cluster.servers["mds2"]
    inbox = server.open_session(9)
    ep = cluster.network.endpoint("mds1")
    ep.send_to("mds2", MsgKind.ACK, txn_id=9)
    cluster.sim.run(until=0.1)
    assert len(inbox) == 1
    assert inbox.items[0].kind == MsgKind.ACK


def test_unknown_stray_message_is_ignored():
    cluster, _ = make_cluster("1PC")
    ep = cluster.network.endpoint("mds1")
    # A PREPARED for an unknown transaction has no live session and no
    # stray handler: it must be dropped without crashing the server.
    ep.send_to("mds1", MsgKind.PREPARED, txn_id=999)
    cluster.sim.run(until=0.1)
    assert not cluster.servers["mds1"].crashed


def test_engine_for_routes_2pc_traffic_to_fallback():
    cluster, _ = make_cluster("1PC")
    server = cluster.servers["mds2"]
    assert server.fallback is not None
    plain_update = Message(src="mds1", dst="mds2", kind=MsgKind.UPDATE_REQ)
    assert server._engine_for(plain_update) is server.fallback
    commit_update = Message(
        src="mds1", dst="mds2", kind=MsgKind.UPDATE_REQ, payload={"commit": True}
    )
    assert server._engine_for(commit_update) is server.protocol
    prepare = Message(src="mds1", dst="mds2", kind=MsgKind.PREPARE)
    assert server._engine_for(prepare) is server.fallback


def test_engine_for_without_fallback():
    from repro import Cluster
    from repro.harness.scenarios import ForcedDistributedPlacement

    cluster = Cluster(
        protocol="PrN",
        server_names=["mds1", "mds2"],
        placement=ForcedDistributedPlacement("mds1", "mds2"),
    )
    server = cluster.servers["mds2"]
    assert server.fallback is None
    msg = Message(src="mds1", dst="mds2", kind=MsgKind.UPDATE_REQ)
    assert server._engine_for(msg) is server.protocol


def test_recovering_server_buffers_then_serves():
    """Requests arriving while recovery runs are buffered, then served
    in arrival order once it finishes."""
    cluster, client = make_cluster("1PC")
    server = cluster.servers["mds1"]
    run_create(cluster, client)
    drain(cluster)

    # Replace the protocol's recovery with a controllable gate so the
    # recovering window is deterministic.
    gate = cluster.sim.event("recovery-gate")
    original_recover = server.protocol.recover

    def slow_recover():
        yield gate
        yield from original_recover()

    server.protocol.recover = slow_recover
    server.crash()
    server.restart()
    cluster.sim.run(until=cluster.sim.now + 0.05)
    assert server.recovering
    client.submit(client.plan_create("/dir1/buffered"))
    cluster.sim.run(until=cluster.sim.now + 0.05)
    assert len(server._buffered_requests) == 1
    gate.succeed()
    cluster.sim.run(until=cluster.sim.now + 60.0)
    assert not server.recovering
    assert server._buffered_requests == []
    assert cluster.lookup("/dir1/buffered") is not None
    assert cluster.check_invariants() == []


def test_message_processing_cost_charged():
    from dataclasses import replace

    from repro.config import SimulationParams
    from repro.harness.scenarios import distributed_create_cluster

    base = SimulationParams.paper_defaults()
    slow = base.with_(compute=replace(base.compute, msg_processing_latency=5e-3))
    fast = base.with_(compute=replace(base.compute, msg_processing_latency=0.0))
    lat = {}
    for tag, params in (("slow", slow), ("fast", fast)):
        cluster, client = distributed_create_cluster("1PC", params=params)
        run_create(cluster, client)
        drain(cluster)
        lat[tag] = cluster.outcomes[0].client_latency
    # 1PC handles >= 2 messages before the reply; 5 ms each.
    assert lat["slow"] > lat["fast"] + 8e-3


def test_heartbeats_are_not_charged_dispatch_cost():
    from repro import Cluster
    from repro.harness.scenarios import ForcedDistributedPlacement

    cluster = Cluster(
        protocol="1PC",
        server_names=["mds1", "mds2"],
        placement=ForcedDistributedPlacement("mds1", "mds2"),
        heartbeats=True,
    )
    cluster.mkdir("/dir1")
    client = cluster.new_client()
    done = cluster.sim.process(client.create("/dir1/f0"), name="x")
    cluster.sim.run(until=done)
    # With 10 ms heartbeats and 0.38 ms per message, charging dispatch
    # cost for heartbeats would visibly inflate the ~5 ms create.
    assert cluster.outcomes == [] or True
    latency = done.value
    assert latency["committed"] is True
