"""The keyword-only constructor surface.

The PR-2 deprecation shims (positional ``Cluster``/``Client``
arguments, the ``trace_enabled=`` spelling) are gone: the legacy
forms are now plain ``TypeError``s, and lint rules API001/API002 flag
them statically everywhere.
"""

import warnings

import pytest

from repro import Cluster, SimulationParams
from repro.mds.client import Client


def test_keyword_construction_emits_no_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        cluster = Cluster(protocol="1PC", server_names=["mds1", "mds2"], trace=False)
    assert cluster.protocol_name == "1PC"


def test_positional_cluster_arguments_are_a_type_error():
    with pytest.raises(TypeError, match="positional"):
        Cluster("PrC", ["mds1", "mds2", "mds3"])  # repro: noqa API001 - asserting the hard error


def test_single_positional_cluster_argument_is_a_type_error():
    with pytest.raises(TypeError, match="positional"):
        Cluster("1PC")  # repro: noqa API001 - asserting the hard error


def test_trace_enabled_spelling_is_a_type_error():
    with pytest.raises(TypeError, match="trace_enabled"):
        Cluster(trace_enabled=False)  # repro: noqa API002 - asserting the hard error


def test_seed_keyword_overrides_params_seed():
    params = SimulationParams.paper_defaults()
    cluster = Cluster(params=params, seed=1234, trace=False)
    assert cluster.params.seed == 1234
    # The original params object is untouched (frozen dataclass).
    assert Cluster(params=params, trace=False).params.seed == params.seed


def test_from_params_builds_equivalent_cluster():
    params = SimulationParams.paper_defaults()
    cluster = Cluster.from_params(params, protocol="EP", server_names=["a", "b"])
    assert cluster.protocol_name == "EP"
    assert sorted(cluster.servers) == ["a", "b"]
    assert cluster.params == params


def test_cluster_exposes_spans_and_metrics_properties():
    cluster = Cluster(trace=True)
    assert cluster.spans is cluster.obs.spans
    assert cluster.metrics is cluster.obs.metrics


def test_client_keyword_name():
    cluster = Cluster(trace=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        client = Client(cluster, name="c9")
    assert client.name == "c9"


def test_client_positional_name_is_a_type_error():
    cluster = Cluster(trace=False)
    with pytest.raises(TypeError, match="positional"):
        Client(cluster, "legacy")  # repro: noqa API001 - asserting the hard error


def test_facade_trace_and_metrics_helpers():
    import repro

    cluster, client = _one_create_cluster()
    spans = repro.trace(cluster)
    assert len(spans) == 1 and spans[0].status == "committed"
    snap = repro.metrics(cluster)
    assert snap["counters"]["txn.committed"] == 1.0
    assert snap["histograms"]["txn.client_latency"]["count"] == 1


def _one_create_cluster():
    from repro.harness.scenarios import distributed_create_cluster

    cluster, client = distributed_create_cluster("1PC")
    done = cluster.sim.process(client.create("/dir1/f0"), name="t")
    cluster.sim.run(until=done)
    cluster.sim.run(until=cluster.sim.now + 60.0)
    return cluster, client
