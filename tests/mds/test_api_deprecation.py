"""The redesigned constructor surface and its backwards-compat shims."""

import warnings

import pytest

from repro import Cluster, SimulationParams
from repro.mds.client import Client


def test_keyword_construction_emits_no_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cluster = Cluster(protocol="1PC", server_names=["mds1", "mds2"], trace=False)
    assert cluster.protocol_name == "1PC"


def test_positional_arguments_still_work_with_warning():
    with pytest.warns(DeprecationWarning, match="positional"):
        cluster = Cluster("PrC", ["mds1", "mds2", "mds3"])
    assert cluster.protocol_name == "PrC"
    assert sorted(cluster.servers) == ["mds1", "mds2", "mds3"]


def test_positional_conflicting_with_keyword_rejected():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="multiple values"):
            Cluster("1PC", protocol="PrN")


def test_too_many_positional_arguments_rejected():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="at most"):
            Cluster("1PC", ["a", "b"], None, None, "PrN", "stonith", False, True, "extra")


def test_trace_enabled_spelling_still_works_with_warning():
    with pytest.warns(DeprecationWarning, match="trace_enabled"):
        cluster = Cluster(trace_enabled=False)
    assert not cluster.obs.enabled
    assert len(cluster.trace) == 0


def test_trace_and_trace_enabled_together_rejected():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="both"):
            Cluster(trace=True, trace_enabled=True)


def test_seed_keyword_overrides_params_seed():
    params = SimulationParams.paper_defaults()
    cluster = Cluster(params=params, seed=1234, trace=False)
    assert cluster.params.seed == 1234
    # The original params object is untouched (frozen dataclass).
    assert params.seed != 1234 or params.seed == 1234  # no mutation possible
    assert Cluster(params=params, trace=False).params.seed == params.seed


def test_from_params_builds_equivalent_cluster():
    params = SimulationParams.paper_defaults()
    cluster = Cluster.from_params(params, protocol="EP", server_names=["a", "b"])
    assert cluster.protocol_name == "EP"
    assert sorted(cluster.servers) == ["a", "b"]
    assert cluster.params == params


def test_cluster_exposes_spans_and_metrics_properties():
    cluster = Cluster(trace=True)
    assert cluster.spans is cluster.obs.spans
    assert cluster.metrics is cluster.obs.metrics


def test_client_keyword_name():
    cluster = Cluster(trace=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        client = Client(cluster, name="c9")
    assert client.name == "c9"


def test_client_positional_name_warns():
    cluster = Cluster(trace=False)
    with pytest.warns(DeprecationWarning, match="positional"):
        client = Client(cluster, "legacy")
    assert client.name == "legacy"


def test_client_positional_and_keyword_name_rejected():
    cluster = Cluster(trace=False)
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError):
            Client(cluster, "a", name="b")


def test_facade_trace_and_metrics_helpers():
    import repro

    cluster, client = _one_create_cluster()
    spans = repro.trace(cluster)
    assert len(spans) == 1 and spans[0].status == "committed"
    snap = repro.metrics(cluster)
    assert snap["counters"]["txn.committed"] == 1.0
    assert snap["histograms"]["txn.client_latency"]["count"] == 1


def _one_create_cluster():
    from repro.harness.scenarios import distributed_create_cluster

    cluster, client = distributed_create_cluster("1PC")
    done = cluster.sim.process(client.create("/dir1/f0"), name="t")
    cluster.sim.run(until=done)
    cluster.sim.run(until=cluster.sim.now + 60.0)
    return cluster, client
