"""Cluster assembly, fallback routing, wide renames, multi-server runs."""

import pytest

from repro import Cluster
from repro.fs import ObjectId, SubtreePlacement
from repro.harness.scenarios import ForcedDistributedPlacement


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        Cluster(protocol="3PC")


def test_unknown_fencing_rejected():
    with pytest.raises(ValueError):
        Cluster(fencing="prayer")


def test_unknown_fallback_rejected():
    with pytest.raises(ValueError):
        Cluster(protocol="1PC", fallback="nope")


def test_mkdir_unknown_server_rejected():
    cluster = Cluster(server_names=["mds1", "mds2"])
    with pytest.raises(KeyError):
        cluster.mkdir("/x", owner="ghost")


def test_mkdir_owner_requires_pinnable_placement():
    cluster = Cluster(
        server_names=["mds1", "mds2"],
        placement=ForcedDistributedPlacement("mds1", "mds2"),
    )
    # ForcedDistributedPlacement has a no-op pin, so this succeeds.
    cluster.mkdir("/ok", owner="mds1")

    class NoPin:
        def place(self, obj):
            return "mds1"

    cluster2 = Cluster(server_names=["mds1"], placement=NoPin())
    with pytest.raises(TypeError):
        cluster2.mkdir("/x", owner="mds1")


def test_wide_rename_falls_back_to_2pc():
    """A four-MDS RENAME exceeds 1PC's one-worker limit; the server
    must run it under the fallback protocol."""
    names = ["mds1", "mds2", "mds3", "mds4"]

    class FourWay:
        def place(self, obj):
            if obj == ObjectId.directory("/a"):
                return "mds1"
            if obj == ObjectId.directory("/b"):
                return "mds2"
            if obj.kind == "inode" and int(obj.key) % 2 == 0:
                return "mds3"
            return "mds4"

        def pin(self, obj, node):
            pass

    cluster = Cluster(protocol="1PC", server_names=names, placement=FourWay(), fallback="PrN")
    cluster.mkdir("/a")
    cluster.mkdir("/b")
    client = cluster.new_client()

    def scenario(sim):
        r1 = yield from client.create("/a/x")
        assert r1["committed"]
        r2 = yield from client.rename("/a/x", "/b/y")
        return r2

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["committed"] is True
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/b/y") is not None
    assert cluster.lookup("/a/x") is None
    assert cluster.trace.count("fallback_protocol") == 1


def test_wide_rename_without_fallback_fails_loudly():
    names = ["mds1", "mds2", "mds3", "mds4"]

    class FourWay:
        def place(self, obj):
            if obj == ObjectId.directory("/a"):
                return "mds1"
            if obj == ObjectId.directory("/b"):
                return "mds2"
            if obj.kind == "inode" and int(obj.key) % 2 == 0:
                return "mds3"
            return "mds4"

        def pin(self, obj, node):
            pass

    cluster = Cluster(protocol="1PC", server_names=names, placement=FourWay(), fallback=None)
    cluster.mkdir("/a")
    cluster.mkdir("/b")
    client = cluster.new_client()

    def scenario(sim):
        yield from client.create("/a/x")
        yield from client.rename("/a/x", "/b/y")

    from repro.fs import UnsupportedOperation

    cluster.sim.process(scenario(cluster.sim))
    with pytest.raises(UnsupportedOperation):
        cluster.sim.run()


def test_four_server_cluster_hash_placement():
    cluster = Cluster(protocol="1PC", server_names=[f"mds{i}" for i in range(1, 5)])
    cluster.mkdir("/dir1")
    client = cluster.new_client()

    def scenario(sim):
        for i in range(12):
            result = yield from client.create(f"/dir1/f{i}")
            assert result["committed"]

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    assert len(cluster.listdir("/dir1")) == 12


def test_subtree_placement_keeps_ops_local():
    names = ["mds1", "mds2"]
    placement = SubtreePlacement(names, {"/": "mds1", "/home": "mds2"})
    cluster = Cluster(protocol="1PC", server_names=names, placement=placement)
    cluster.mkdir("/home")
    client = cluster.new_client()
    plan = client.plan_create("/home/file")
    # Subtree locality: the inode co-locates with its directory.
    assert not plan.is_distributed
    assert plan.coordinator == "mds2"


def test_figure1_distributed_namespace_example():
    """Figure 1: four MDSs, /dir2/file1's dentry and inode on
    different servers — exactly the situation that needs an ACP."""
    names = [f"mds{i}" for i in range(1, 5)]
    cluster = Cluster(protocol="1PC", server_names=names)
    cluster.mkdir("/dir2", owner="mds1")
    client = cluster.new_client()
    # Find a path whose inode lands on a different server.
    plan = None
    for i in range(32):
        candidate = client.plan_create(f"/dir2/file{i}")
        if candidate.is_distributed:
            plan = candidate
            break
    assert plan is not None
    done = cluster.sim.process(client.run(plan), name="fig1")
    cluster.sim.run(until=done)
    assert done.value["committed"]
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []


def test_lookup_and_listdir_roundtrip():
    cluster = Cluster(server_names=["mds1", "mds2"])
    cluster.mkdir("/dir1", owner="mds1")
    client = cluster.new_client()
    done = cluster.sim.process(client.create("/dir1/f0"), name="x")
    cluster.sim.run(until=done)
    cluster.sim.run(until=cluster.sim.now + 150.0)
    ino = cluster.lookup("/dir1/f0")
    assert ino is not None
    assert cluster.listdir("/dir1") == {"f0": ino}
    assert cluster.lookup("/dir1/ghost") is None


def test_restart_non_crashed_server_rejected():
    cluster = Cluster(server_names=["mds1", "mds2"])
    with pytest.raises(RuntimeError):
        cluster.servers["mds1"].restart()


def test_outcome_bookkeeping():
    cluster = Cluster(server_names=["mds1", "mds2"])
    cluster.mkdir("/dir1", owner="mds1")
    client = cluster.new_client()
    done = cluster.sim.process(client.create("/dir1/f0"), name="x")
    cluster.sim.run(until=done)
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert len(cluster.outcomes) == 1
    assert cluster.committed_outcomes() == cluster.outcomes
    out = cluster.outcomes[0]
    assert out.client_latency > 0
    assert out.op == "CREATE" and out.coordinator == "mds1"
