"""Metadata reads (STAT): shared locking, cache visibility, POSIX view."""

from tests.protocols.conftest import drain, make_cluster, run_create


def test_stat_finds_committed_file(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)

    def reader(sim):
        result = yield from client.stat("/dir1/f0")
        return result

    p = cluster.sim.process(reader(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["found"] is True
    assert p.value["ino"] == cluster.lookup("/dir1/f0")


def test_stat_missing_file(protocol):
    cluster, client = make_cluster(protocol)

    def reader(sim):
        result = yield from client.stat("/dir1/ghost")
        return result

    p = cluster.sim.process(reader(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["found"] is False and p.value["ino"] is None


def test_stat_blocks_behind_inflight_create(protocol):
    """POSIX consistent-view semantics: a read of the directory queues
    behind the exclusive lock of an in-flight create — so it observes
    the create's outcome, never the intermediate state."""
    cluster, client = make_cluster(protocol)
    client.submit(client.plan_create("/dir1/f0"))
    # Let the create acquire its directory lock.
    while not cluster.trace.select(
        "lock_grant", predicate=lambda r: r.get("obj").kind == "dir"
    ):
        cluster.sim.step()

    def reader(sim):
        result = yield from client.stat("/dir1/f0")
        return (result, sim.now)

    p = cluster.sim.process(reader(cluster.sim))
    cluster.sim.run(until=p)
    result, when = p.value
    assert result["found"] is True
    # The reply came only after the create released the lock.
    release = cluster.trace.select(
        "lock_release", predicate=lambda r: r.get("obj").kind == "dir"
    )
    assert release and when >= release[0].time


def test_stat_sees_1pc_early_committed_state():
    """1PC releases the directory lock after the worker's commit but
    before the coordinator's own forced write: a stat in that window
    must already see the new file (served from the cache image)."""
    cluster, client = make_cluster("1PC")
    client.submit(client.plan_create("/dir1/f0"))
    # Run exactly until the coordinator replies to the client.
    while not cluster.trace.select("client_reply"):
        cluster.sim.step()
    # The coordinator's own commit record is not durable yet...
    assert not cluster.store_of("mds1").stable_directories["/dir1"]
    # ...but a read already sees the file.
    def reader(sim):
        result = yield from client.stat("/dir1/f0")
        return result

    p = cluster.sim.process(reader(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["found"] is True
    drain(cluster)
    assert cluster.check_invariants() == []


def test_concurrent_stats_share_the_lock():
    cluster, client = make_cluster("1PC")
    run_create(cluster, client)
    drain(cluster)
    results = []

    def reader(sim, tag):
        yield from client.stat("/dir1/f0")
        results.append((tag, sim.now))

    for tag in range(4):
        cluster.sim.process(reader(cluster.sim, tag))
    cluster.sim.run(until=cluster.sim.now + 1.0)
    # All four served at (nearly) the same instant: shared locks.
    times = [t for _tag, t in results]
    assert len(results) == 4
    assert max(times) - min(times) < 2e-3


def test_stat_timeout_raises():
    from repro.mds.client import ClientTimeout

    cluster, client = make_cluster("1PC")
    cluster.crash_server("mds1")

    def reader(sim):
        try:
            yield from client.stat("/dir1/f0", timeout=0.1)
        except ClientTimeout:
            return "timeout"

    p = cluster.sim.process(reader(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value == "timeout"
