"""Unit tests for placement policies and operation planning."""

import pytest

from repro.fs import (
    FileType,
    HashPlacement,
    InodeAllocator,
    ObjectId,
    PinnedPlacement,
    RoundRobinPlacement,
    SubtreePlacement,
    plan_create,
    plan_delete,
    plan_rename,
    split_path,
)

NODES = ["mds1", "mds2", "mds3", "mds4"]


def test_split_path():
    assert split_path("/a/b/c") == ("/a/b", "c")
    assert split_path("/file") == ("/", "file")
    assert split_path("/a/b/") == ("/a", "b")
    with pytest.raises(ValueError):
        split_path("/")


def test_hash_placement_deterministic_and_covers_nodes():
    p = HashPlacement(NODES)
    obj = ObjectId.directory("/dir1")
    assert p.place(obj) == p.place(obj)
    hits = {p.place(ObjectId.inode(i)) for i in range(200)}
    assert hits == set(NODES)


def test_hash_placement_requires_nodes():
    with pytest.raises(ValueError):
        HashPlacement([])


def test_round_robin_stripes_inodes():
    p = RoundRobinPlacement(NODES)
    assert p.place(ObjectId.inode(0)) == "mds1"
    assert p.place(ObjectId.inode(1)) == "mds2"
    assert p.place(ObjectId.inode(5)) == "mds2"


def test_subtree_placement_longest_prefix():
    p = SubtreePlacement(NODES, {"/": "mds1", "/home": "mds2", "/home/alice": "mds3"})
    assert p.place(ObjectId.directory("/etc")) == "mds1"
    assert p.place(ObjectId.directory("/home/bob")) == "mds2"
    assert p.place(ObjectId.directory("/home/alice/doc")) == "mds3"
    assert p.place(ObjectId.directory("/home")) == "mds2"


def test_subtree_placement_validation():
    with pytest.raises(ValueError):
        SubtreePlacement(NODES, {"/home": "mds1"})  # no root
    with pytest.raises(ValueError):
        SubtreePlacement(NODES, {"/": "ghost"})


def test_subtree_placement_inode_hints_colocate():
    p = SubtreePlacement(NODES, {"/": "mds1", "/home": "mds2"})
    p.hint_inode_path(42, "/home/file")
    assert p.place(ObjectId.inode(42)) == "mds2"


def test_pinned_placement_overrides_fallback():
    fallback = HashPlacement(NODES)
    obj = ObjectId.directory("/dir1")
    p = PinnedPlacement({obj: "mds4"}, fallback)
    assert p.place(obj) == "mds4"
    other = ObjectId.directory("/other")
    assert p.place(other) == fallback.place(other)
    p.pin(other, "mds1")
    assert p.place(other) == "mds1"


def force_distributed_placement():
    """Parent dir on mds1, every inode on mds2 (the Fig. 6 setup)."""
    fallback = HashPlacement(["mds1", "mds2"])
    p = PinnedPlacement({ObjectId.directory("/dir1"): "mds1"}, fallback)
    orig_place = p.place

    class Wrapper:
        def place(self, obj):
            if obj.kind == "inode":
                return "mds2"
            return orig_place(obj)

    return Wrapper()


def test_plan_create_distributed():
    placement = force_distributed_placement()
    alloc = InodeAllocator(start=100)
    plan = plan_create("/dir1/f0", placement, alloc)
    assert plan.op == "CREATE"
    assert plan.coordinator == "mds1"
    assert plan.workers == ["mds2"]
    assert plan.is_distributed
    assert plan.detail["ino"] == 100
    assert [type(u).__name__ for u in plan.updates["mds1"]] == ["AddDentry"]
    assert [type(u).__name__ for u in plan.updates["mds2"]] == ["CreateInode"]


def test_plan_create_local_when_colocated():
    placement = HashPlacement(["only"])
    plan = plan_create("/dir1/f0", placement, InodeAllocator())
    assert not plan.is_distributed
    assert plan.participants == ["only"]


def test_plan_create_allocates_fresh_inodes():
    placement = HashPlacement(["only"])
    alloc = InodeAllocator(start=5)
    p1 = plan_create("/dir1/a", placement, alloc)
    p2 = plan_create("/dir1/b", placement, alloc)
    assert p1.detail["ino"] == 5 and p2.detail["ino"] == 6


def test_plan_create_directory_type():
    placement = HashPlacement(["only"])
    plan = plan_create("/dir1/sub", placement, InodeAllocator(), ftype=FileType.DIRECTORY)
    create = plan.updates["only"][-1]
    assert create.ftype is FileType.DIRECTORY


def test_plan_delete_distributed():
    placement = force_distributed_placement()
    plan = plan_delete("/dir1/f0", ino=100, placement=placement)
    assert plan.coordinator == "mds1"
    assert plan.workers == ["mds2"]
    assert [type(u).__name__ for u in plan.updates["mds2"]] == ["DecLink"]


def test_plan_locks_deterministic_and_deduplicated():
    placement = HashPlacement(["only"])
    alloc = InodeAllocator(start=7)
    plan = plan_create("/dir1/f0", placement, alloc)
    locks = plan.locks("only")
    assert locks == [ObjectId.directory("/dir1"), ObjectId.inode(7)]
    assert plan.locks("ghost") == []


def test_plan_rename_up_to_four_participants():
    # Four distinct nodes: src dir, dst dir, replaced inode, renamed inode.
    class FourWay:
        def place(self, obj):
            if obj == ObjectId.directory("/a"):
                return "mds1"
            if obj == ObjectId.directory("/b"):
                return "mds2"
            if obj == ObjectId.inode(50):
                return "mds3"
            return "mds4"

    plan = plan_rename("/a/x", "/b/y", ino=60, placement=FourWay(), replaced_ino=50)
    assert set(plan.participants) == {"mds1", "mds2", "mds3", "mds4"}
    assert plan.coordinator == "mds1"
    assert plan.op == "RENAME"
    assert plan.detail["dst"] == "/b/y"


def test_plan_rename_two_participants_without_replace():
    class TwoWay:
        def place(self, obj):
            return "mds1" if obj.kind == "dir" else "mds2"

    plan = plan_rename("/a/x", "/a/y", ino=60, placement=TwoWay(), touch_inode=True)
    assert set(plan.participants) == {"mds1", "mds2"}


def test_plan_rename_onto_itself_rejected():
    with pytest.raises(ValueError):
        plan_rename("/a/x", "/a/x", ino=1, placement=HashPlacement(["only"]))


def test_plan_describe_roundtrips_updates():
    from repro.fs import update_from_description

    placement = HashPlacement(["only"])
    plan = plan_create("/dir1/f0", placement, InodeAllocator(start=9))
    desc = plan.describe()
    revived = [update_from_description(d) for d in desc["updates"]["only"]]
    assert revived == plan.updates["only"]


def test_plan_coordinator_must_have_updates():
    from repro.fs import AddDentry, OpPlan

    with pytest.raises(ValueError):
        OpPlan(
            op="CREATE",
            path="/x",
            updates={"mds2": [AddDentry("/", "x", 1)]},
            coordinator="mds1",
        )
