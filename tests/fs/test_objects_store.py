"""Unit tests for metadata objects, updates and the transactional store."""

import pytest

from repro.fs import (
    AddDentry,
    CreateInode,
    DecLink,
    FileType,
    IncLink,
    Inode,
    MetadataStore,
    ObjectId,
    RemoveDentry,
    TouchInode,
    UpdateError,
    update_from_description,
)


def make_store():
    store = MetadataStore("mds1")
    store.mkdir("/")
    store.mkdir("/dir1")
    return store


def test_object_id_validation_and_factories():
    assert ObjectId.directory("/a").kind == "dir"
    assert ObjectId.inode(5) == ObjectId("inode", "5")
    with pytest.raises(ValueError):
        ObjectId("bogus", "x")


def test_mkdir_duplicate_rejected():
    store = make_store()
    with pytest.raises(UpdateError):
        store.mkdir("/dir1")


def test_add_dentry_and_commit():
    store = make_store()
    store.apply(1, AddDentry("/dir1", "f", 100))
    # Not visible in the stable image until commit.
    assert store.lookup("/dir1", "f") is None
    store.commit(1)
    assert store.lookup("/dir1", "f") == 100


def test_add_dentry_duplicate_in_overlay_rejected():
    store = make_store()
    store.apply(1, AddDentry("/dir1", "f", 100))
    with pytest.raises(UpdateError):
        store.apply(1, AddDentry("/dir1", "f", 200))


def test_add_dentry_missing_directory_rejected():
    store = make_store()
    with pytest.raises(UpdateError):
        store.apply(1, AddDentry("/nope", "f", 100))


def test_remove_dentry_roundtrip():
    store = make_store()
    store.apply(1, AddDentry("/dir1", "f", 100))
    store.commit(1)
    store.apply(2, RemoveDentry("/dir1", "f"))
    store.commit(2)
    assert store.lookup("/dir1", "f") is None


def test_remove_missing_dentry_rejected():
    store = make_store()
    with pytest.raises(UpdateError):
        store.apply(1, RemoveDentry("/dir1", "ghost"))


def test_create_inode_and_links():
    store = make_store()
    store.apply(1, CreateInode(100))
    store.commit(1)
    assert store.inode(100).nlink == 1
    store.apply(2, IncLink(100))
    store.commit(2)
    assert store.inode(100).nlink == 2
    store.apply(3, DecLink(100))
    store.commit(3)
    assert store.inode(100).nlink == 1


def test_dec_link_to_zero_deletes_inode():
    store = make_store()
    store.apply(1, CreateInode(100))
    store.commit(1)
    store.apply(2, DecLink(100))
    store.commit(2)
    assert store.inode(100) is None


def test_create_duplicate_inode_rejected():
    store = make_store()
    store.adopt_inode(Inode(100, FileType.FILE))
    with pytest.raises(UpdateError):
        store.apply(1, CreateInode(100))


def test_link_updates_on_missing_inode_rejected():
    store = make_store()
    for update in (IncLink(99), DecLink(99), TouchInode(99)):
        with pytest.raises(UpdateError):
            store.apply(1, update)
        store.abort(1)


def test_touch_inode_is_semantic_noop():
    store = make_store()
    store.adopt_inode(Inode(100, FileType.FILE))
    store.apply(1, TouchInode(100))
    store.commit(1)
    assert store.inode(100).nlink == 1


def test_abort_discards_overlay():
    store = make_store()
    store.apply(1, AddDentry("/dir1", "f", 100))
    store.abort(1)
    store.commit(1)  # idempotent no-op
    assert store.lookup("/dir1", "f") is None


def test_crash_discards_all_overlays():
    store = make_store()
    store.apply(1, AddDentry("/dir1", "a", 1))
    store.apply(2, AddDentry("/dir1", "b", 2))
    assert store.in_flight() == [1, 2]
    store.crash()
    assert store.in_flight() == []
    store.commit(1)
    assert store.listdir("/dir1") == {}


def test_overlays_are_isolated_per_transaction():
    store = make_store()
    store.apply(1, AddDentry("/dir1", "a", 1))
    store.apply(2, AddDentry("/dir1", "b", 2))
    store.commit(1)
    assert store.listdir("/dir1") == {"a": 1}
    store.commit(2)
    assert store.listdir("/dir1") == {"a": 1, "b": 2}


def test_updates_of_returns_applied_order():
    store = make_store()
    u1 = AddDentry("/dir1", "a", 1)
    u2 = CreateInode(1)
    store.apply(1, u1)
    store.apply(1, u2)
    assert store.updates_of(1) == [u1, u2]
    assert store.updates_of(99) == []


def test_commit_unknown_txn_is_noop():
    store = make_store()
    store.commit(12345)


def test_update_targets():
    assert AddDentry("/d", "f", 1).target() == ObjectId.directory("/d")
    assert RemoveDentry("/d", "f").target() == ObjectId.directory("/d")
    assert CreateInode(7).target() == ObjectId.inode(7)
    assert DecLink(7).target() == ObjectId.inode(7)


def test_update_describe_roundtrip():
    for update in (
        AddDentry("/d", "f", 1),
        RemoveDentry("/d", "f"),
        CreateInode(7, FileType.DIRECTORY),
        IncLink(7),
        DecLink(7),
        TouchInode(7),
    ):
        revived = update_from_description(update.describe())
        assert revived == update


def test_update_from_unknown_description_rejected():
    with pytest.raises(ValueError):
        update_from_description({"type": "Nonsense"})


def test_stable_views_are_copies():
    store = make_store()
    store.apply(1, AddDentry("/dir1", "f", 100))
    store.commit(1)
    view = store.stable_directories
    view["/dir1"]["f"] = 999
    assert store.lookup("/dir1", "f") == 100


def test_listdir_and_has_dir():
    store = make_store()
    assert store.has_dir("/dir1")
    assert not store.has_dir("/other")
    assert store.listdir("/other") == {}
