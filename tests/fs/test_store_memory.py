"""Regression tests for the O(objects-touched) store internals.

PR 10 replaced the three full-image copies per transaction with
copy-on-write delta views and the unbounded ``set[int]`` applied-txn
watermark with compressed integer ranges.  These tests pin the exact
semantics the protocols rely on (all-or-nothing commit, exact
``has_applied`` membership) and the memory bounds that make
million-transaction runs possible.
"""

import random

import pytest

from repro.fs import AddDentry, CreateInode, MetadataStore, RemoveDentry, UpdateError
from repro.fs.store import _AppliedSet


# -- _AppliedSet: exact membership in O(#gaps) memory -------------------------


def test_applied_set_matches_plain_set_under_fuzz():
    rng = random.Random(42)
    compressed = _AppliedSet()
    reference = set()
    for _ in range(5000):
        txn = rng.randrange(800)
        compressed.add(txn)
        reference.add(txn)
    for txn in range(-5, 805):
        assert (txn in compressed) == (txn in reference)


def test_applied_set_collapses_contiguous_ids_to_one_range():
    s = _AppliedSet()
    order = list(range(1000))
    random.Random(7).shuffle(order)
    for txn in order:
        s.add(txn)
    assert len(s._los) == 1
    assert s._los == [0] and s._his == [999]


def test_applied_set_gaps_stay_exact():
    s = _AppliedSet()
    for txn in (1, 2, 5, 6, 9):
        s.add(txn)
    assert [t for t in range(12) if t in s] == [1, 2, 5, 6, 9]
    s.add(4)  # extends [5,6] leftward
    s.add(3)  # bridges [1,2] and [4,6]
    assert s._los == [1, 9] and s._his == [6, 9]
    s.add(2)  # duplicate: no-op
    assert s._los == [1, 9] and s._his == [6, 9]


# -- copy-on-write commit path ------------------------------------------------


def make_store():
    store = MetadataStore("mds1")
    store.mkdir("/d")
    return store


def test_commit_folds_into_the_live_cache_image():
    """Commit must not replace the cache image wholesale; folding in
    place is what keeps per-transaction cost O(objects touched)."""
    store = make_store()
    cache_before = store._cache
    stable_before = store._stable
    store.apply(1, AddDentry("/d", "f", 10))
    store.commit_durable(1)
    assert store._cache is cache_before
    assert store._stable is stable_before
    assert store.lookup("/d", "f") == 10


def test_failed_commit_leaves_no_partial_state():
    """A conflicting update mid-commit (only possible when 2PL was
    bypassed) must leave the cache exactly as it was — including
    updates earlier in the same transaction."""
    store = make_store()
    # Two overlays race for the same name without locks.
    store.apply(1, AddDentry("/d", "a", 1))
    store.apply(1, AddDentry("/d", "clash", 2))
    store.apply(2, AddDentry("/d", "clash", 3))
    store.commit(2)
    with pytest.raises(UpdateError):
        store.commit(1)
    # Nothing from txn 1 leaked — not even the non-conflicting dentry.
    assert store.lookup("/d", "a") is None
    assert store.lookup("/d", "clash") == 3
    assert not store.is_visible(1)


def test_abort_discards_overlay_without_touching_cache():
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.apply(1, CreateInode(10))
    store.abort(1)
    assert store.lookup("/d", "f") is None
    assert store.inode(10) is None
    assert store.in_flight() == []


def test_overlay_mutations_are_invisible_until_commit():
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.apply(1, RemoveDentry("/d", "f"))  # read-your-own-writes
    assert store.lookup("/d", "f") is None
    store.apply(1, AddDentry("/d", "f", 11))
    assert store.lookup("/d", "f") is None  # still volatile
    store.commit(1)
    assert store.lookup("/d", "f") == 11


def test_inode_link_counts_fold_exactly_once():
    from repro.fs import DecLink, FileType, IncLink, Inode

    store = make_store()
    store.adopt_inode(Inode(5, FileType.FILE, nlink=2))
    store.apply(1, IncLink(5))
    store.commit_durable(1)
    assert store.inode(5).nlink == 3
    assert store.stable_inodes[5].nlink == 3
    store.apply(2, DecLink(5))
    store.apply(2, DecLink(5))
    store.apply(2, DecLink(5))
    store.commit_durable(2)
    assert store.inode(5) is None
    assert 5 not in store.stable_inodes


def test_many_commits_keep_applied_watermark_compressed():
    """A long run of committed transactions must not grow the applied
    set — this is the million-txn RSS regression in miniature."""
    store = make_store()
    for txn in range(1, 2001):
        store.apply(txn, AddDentry("/d", f"f{txn}", txn))
        store.commit_durable(txn)
    assert len(store._applied._los) == 1
    assert all(store.has_applied(t) for t in (1, 1000, 2000))
    assert not store.has_applied(2001)
