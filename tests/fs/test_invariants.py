"""Unit tests for the file-system invariant checker, including the two
failure scenarios of §II."""

from repro.fs import (
    AddDentry,
    CreateInode,
    DecLink,
    FileType,
    Inode,
    MetadataStore,
    RemoveDentry,
    check_invariants,
)


def two_mds_with_file():
    """Figure 1's situation: /dir2/file1's dentry on mds1, inode on mds2."""
    mds1 = MetadataStore("mds1")
    mds1.mkdir("/dir2")
    mds2 = MetadataStore("mds2")
    mds1.apply(1, AddDentry("/dir2", "file1", 100))
    mds1.commit_durable(1)
    mds2.apply(1, CreateInode(100))
    mds2.commit_durable(1)
    return mds1, mds2


def test_consistent_state_has_no_violations():
    mds1, mds2 = two_mds_with_file()
    assert check_invariants([mds1, mds2]) == []


def test_partial_delete_orphaned_inode_detected():
    """§II scenario: MDS1 unlinks but MDS2 never drops the inode ->
    orphaned inode."""
    mds1, mds2 = two_mds_with_file()
    mds1.apply(2, RemoveDentry("/dir2", "file1"))
    mds1.commit_durable(2)
    violations = check_invariants([mds1, mds2])
    assert [v.rule for v in violations] == ["no-orphaned-inode"]
    assert "inode 100" in violations[0].subject


def test_partial_delete_dangling_reference_detected():
    """§II scenario: MDS2 deletes the inode but MDS1 keeps the dentry ->
    dangling reference."""
    mds1, mds2 = two_mds_with_file()
    mds2.apply(2, DecLink(100))
    mds2.commit_durable(2)
    violations = check_invariants([mds1, mds2])
    assert [v.rule for v in violations] == ["no-dangling-reference"]
    assert "/dir2/file1" in violations[0].subject


def test_link_count_mismatch_detected():
    mds1, mds2 = two_mds_with_file()
    mds1.apply(2, AddDentry("/dir2", "hardlink", 100))
    mds1.commit_durable(2)  # second dentry without IncLink
    violations = check_invariants([mds1, mds2])
    assert [v.rule for v in violations] == ["link-count"]


def test_hardlink_with_inclink_is_consistent():
    from repro.fs import IncLink

    mds1, mds2 = two_mds_with_file()
    mds1.apply(2, AddDentry("/dir2", "hardlink", 100))
    mds1.commit_durable(2)
    mds2.apply(2, IncLink(100))
    mds2.commit_durable(2)
    assert check_invariants([mds1, mds2]) == []


def test_double_directory_ownership_detected():
    mds1 = MetadataStore("mds1")
    mds1.mkdir("/dup")
    mds2 = MetadataStore("mds2")
    mds2.mkdir("/dup")
    violations = check_invariants([mds1, mds2])
    assert [v.rule for v in violations] == ["unique-ownership"]


def test_double_inode_ownership_detected():
    mds1 = MetadataStore("mds1")
    mds1.adopt_inode(Inode(7, FileType.FILE, nlink=0))
    mds2 = MetadataStore("mds2")
    mds2.adopt_inode(Inode(7, FileType.FILE, nlink=0))
    violations = check_invariants([mds1, mds2])
    rules = {v.rule for v in violations}
    assert "unique-ownership" in rules


def test_directory_inodes_exempt_from_orphan_rule_by_default():
    mds1 = MetadataStore("mds1")
    mds1.adopt_inode(Inode(1, FileType.DIRECTORY))
    assert check_invariants([mds1]) == []
    strict = check_invariants([mds1], allow_directory_orphans=False)
    assert [v.rule for v in strict] == ["no-orphaned-inode"]


def test_uncommitted_overlays_do_not_affect_invariants():
    mds1, mds2 = two_mds_with_file()
    mds1.apply(9, RemoveDentry("/dir2", "file1"))  # never committed
    assert check_invariants([mds1, mds2]) == []


def test_violation_str_format():
    mds1, mds2 = two_mds_with_file()
    mds2.apply(2, DecLink(100))
    mds2.commit_durable(2)
    v = check_invariants([mds1, mds2])[0]
    assert "no-dangling-reference" in str(v)
