"""The namespace sharding layer: N-shard placement policies."""

import pytest

from repro.fs import (
    ObjectId,
    PinnedPlacement,
    RoundRobinPlacement,
    ShardedHashPlacement,
    ShardedSubtreePlacement,
    SubtreePlacement,
)

NODES = ["mds0", "mds1", "mds2", "mds3"]


def test_sharded_hash_dir_home_shard_is_stable():
    p = ShardedHashPlacement(NODES)
    home = p.shard_of_dir("/hot")
    assert home in NODES
    assert p.place(ObjectId.directory("/hot")) == home
    # Stable across policy instances (pure function of the path).
    assert ShardedHashPlacement(NODES).shard_of_dir("/hot") == home


def test_sharded_hash_stripes_consecutive_inodes_over_stripe_set():
    stripe = ["mds1", "mds2", "mds3"]
    p = ShardedHashPlacement(NODES, stripe=stripe)
    homes = [p.place(ObjectId.inode(1000 + i)) for i in range(6)]
    # Consecutive inode numbers visit consecutive stripe shards.
    assert homes[:3] == homes[3:]
    assert sorted(set(homes)) == sorted(stripe)


def test_sharded_hash_non_numeric_inode_key_hashes_into_stripe():
    p = ShardedHashPlacement(NODES, stripe=["mds1", "mds2"])
    assert p.place(ObjectId.inode("ino-abc")) in ("mds1", "mds2")


def test_stripe_must_be_subset_of_nodes():
    with pytest.raises(ValueError, match="unknown nodes"):
        ShardedHashPlacement(NODES, stripe=["mds9"])
    with pytest.raises(ValueError, match="at least one"):
        ShardedHashPlacement(NODES, stripe=[])
    with pytest.raises(ValueError, match="unknown nodes"):
        ShardedSubtreePlacement(NODES, {"/": "mds0"}, stripe=["nope"])


def test_sharded_subtree_pins_dirs_and_stripes_inodes():
    p = ShardedSubtreePlacement(
        NODES, {"/": "mds0", "/pinned": "mds3"}, stripe=["mds1", "mds2"]
    )
    assert p.place(ObjectId.directory("/pinned/sub")) == "mds3"
    assert p.place(ObjectId.directory("/other")) == "mds0"
    # Inodes ignore the subtree map entirely: striped, even with a hint.
    p.hint_inode_path(1000, "/pinned/f0")
    assert p.place(ObjectId.inode(1000)) == "mds1"
    assert p.place(ObjectId.inode(1001)) == "mds2"


def test_sharded_subtree_requires_root_coverage():
    with pytest.raises(ValueError, match="root"):
        ShardedSubtreePlacement(NODES, {"/a": "mds0"})


def test_subtree_hint_inode_path_colocates_with_home_directory():
    p = SubtreePlacement(NODES, {"/": "mds0", "/a": "mds1"})
    p.hint_inode_path(2000, "/a/file")
    assert p.place(ObjectId.inode(2000)) == "mds1"
    # Without a hint the inode falls back to hashing over all nodes.
    assert p.place(ObjectId.inode(2001)) in NODES


def test_pinned_placement_falls_back_when_unpinned():
    fallback = RoundRobinPlacement(NODES)
    p = PinnedPlacement({ObjectId.directory("/d"): "mds3"}, fallback)
    assert p.place(ObjectId.directory("/d")) == "mds3"
    assert p.place(ObjectId.inode(1002)) == fallback.place(ObjectId.inode(1002))
    p.pin(ObjectId.inode(1002), "mds0")
    assert p.place(ObjectId.inode(1002)) == "mds0"
