"""Tests for the overlay / cache / stable layering of MetadataStore."""

from repro.fs import AddDentry, MetadataStore


def make_store():
    store = MetadataStore("mds1")
    store.mkdir("/d")
    return store


def test_commit_makes_updates_cache_visible_not_stable():
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.commit(1)
    assert store.lookup("/d", "f") == 10  # visible to reads
    assert store.stable_directories["/d"] == {}  # not yet durable
    assert store.unhardened() == [1]
    assert store.is_visible(1)
    assert not store.has_applied(1)


def test_harden_folds_into_stable():
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.commit(1)
    store.harden(1)
    assert store.stable_directories["/d"] == {"f": 10}
    assert store.has_applied(1)
    assert store.unhardened() == []


def test_commit_durable_is_commit_plus_harden():
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.commit_durable(1)
    assert store.lookup("/d", "f") == 10
    assert store.stable_directories["/d"] == {"f": 10}


def test_crash_reverts_cache_to_stable():
    store = make_store()
    store.apply(1, AddDentry("/d", "hardened", 1))
    store.commit_durable(1)
    store.apply(2, AddDentry("/d", "cache_only", 2))
    store.commit(2)
    store.apply(3, AddDentry("/d", "overlay_only", 3))
    store.crash()
    assert store.lookup("/d", "hardened") == 1
    assert store.lookup("/d", "cache_only") is None
    assert store.lookup("/d", "overlay_only") is None
    assert store.unhardened() == [] and store.in_flight() == []


def test_harden_after_crash_is_noop():
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.commit(1)
    store.crash()
    store.harden(1)  # the pending record died with the cache
    assert store.stable_directories["/d"] == {}


def test_recommit_after_harden_is_noop():
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.commit_durable(1)
    # Recovery replays: apply + commit again must not double-apply.
    store.apply(1, AddDentry("/d", "g", 11))
    store.commit(1)
    store.harden(1)
    assert store.stable_directories["/d"] == {"f": 10}
    assert store.lookup("/d", "g") is None


def test_second_txn_sees_cache_committed_state():
    """A transaction started after an unhardened commit must observe it
    (EEXIST semantics during the 1PC early-release window)."""
    store = make_store()
    store.apply(1, AddDentry("/d", "f", 10))
    store.commit(1)
    import pytest

    from repro.fs import UpdateError

    with pytest.raises(UpdateError):
        store.apply(2, AddDentry("/d", "f", 99))


def test_mkdir_and_adopt_populate_both_layers():
    store = make_store()
    from repro.fs import FileType, Inode

    store.adopt_inode(Inode(5, FileType.FILE))
    assert store.inode(5) is not None
    assert 5 in store.stable_inodes
    assert store.has_dir("/d")
    assert "/d" in store.stable_directories


def test_inode_read_returns_copy():
    store = make_store()
    from repro.fs import FileType, Inode

    store.adopt_inode(Inode(5, FileType.FILE))
    view = store.inode(5)
    view.nlink = 99
    assert store.inode(5).nlink == 1
