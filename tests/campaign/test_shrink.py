"""Shrinker unit tests against synthetic (no-simulation) oracles."""

import dataclasses

import pytest

from repro.campaign.schedule import CampaignSchedule, FaultSpec
from repro.campaign.shrink import shrink_schedule
from repro.campaign.triggers import TraceTrigger


def sched(n_faults=4, n_ops=8, n_clients=2):
    faults = tuple(
        FaultSpec(kind="crash", node=f"mds{i % 2 + 1}", at=0.01 * (i + 1))
        for i in range(n_faults)
    )
    return CampaignSchedule(
        protocol="1PC", seed=0, n_ops=n_ops, n_clients=n_clients, faults=faults
    )


def test_shrinks_to_single_culprit_fault():
    culprit = sched().faults[2]

    def oracle(candidate):
        return culprit in candidate.faults

    result = shrink_schedule(sched(), oracle)
    assert result.schedule.faults == (culprit,)
    assert result.schedule.n_ops == 1
    assert result.schedule.n_clients == 1
    assert result.steps > 0
    assert result.tried > result.steps


def test_result_is_one_minimal():
    """Removing any remaining fault must un-reproduce."""
    needed = {sched().faults[0], sched().faults[3]}

    def oracle(candidate):
        return needed <= set(candidate.faults)

    result = shrink_schedule(sched(), oracle)
    assert set(result.schedule.faults) == needed
    for i in range(len(result.schedule.faults)):
        faults = result.schedule.faults[:i] + result.schedule.faults[i + 1 :]
        candidate = dataclasses.replace(result.schedule, faults=faults)
        assert not oracle(candidate)


def test_workload_only_shrink():
    """An always-reproducing oracle shrinks everything away."""
    result = shrink_schedule(sched(), lambda candidate: True)
    assert result.schedule.faults == ()
    assert result.schedule.n_ops == 1
    assert result.schedule.n_clients == 1


def test_non_reproducing_schedule_rejected():
    with pytest.raises(ValueError, match="does not reproduce"):
        shrink_schedule(sched(), lambda candidate: False)


def test_trigger_tightening():
    """An unbound trigger gets pinned to the fault's node."""
    loose = FaultSpec(
        kind="crash", node="mds2", trigger=TraceTrigger(category="fence", min_count=3)
    )

    def oracle(candidate):
        # Reproduces as long as a crash on mds2 with a fence trigger
        # remains, however tight.
        return any(
            f.kind == "crash" and f.node == "mds2" and f.trigger is not None
            for f in candidate.faults
        )

    base = CampaignSchedule(protocol="1PC", seed=0, n_ops=2, faults=(loose,))
    result = shrink_schedule(base, oracle)
    (fault,) = result.schedule.faults
    assert fault.trigger is not None
    assert fault.trigger.actor == "mds2"
    assert fault.trigger.min_count == 1


def test_oracle_call_budget_is_linear():
    """Greedy ddmin stays cheap: O(faults) per fixpoint round."""
    calls = []

    def oracle(candidate):
        calls.append(candidate)
        return True

    shrink_schedule(sched(n_faults=8, n_ops=16), oracle)
    assert len(calls) < 40
