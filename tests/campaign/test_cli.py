"""End-to-end tests for the ``repro campaign`` CLI."""

import json

import pytest

from repro.cli import main


def run_cli(argv):
    return main(list(argv))


def test_campaign_run_single_protocol_json(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "CAMPAIGN.json"
    code = run_cli(
        ["campaign", "run", "--protocol", "1PC", "--runs", "3", "--seed", "0",
         "--json", str(out)]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "Fault campaign" in text
    doc = json.loads(out.read_text())
    assert doc["kind"] == "campaign"
    assert len(doc["cells"]) == 3
    for cell in doc["cells"]:
        assert cell["verdict"]["violations"] == []
    # meta is dropped: the document is canonical.
    assert "meta" not in doc


def test_campaign_run_deterministic_and_warm(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert run_cli(["campaign", "run", "--protocol", "EP", "--runs", "2",
                    "--json", str(a)]) == 0
    capsys.readouterr()
    assert run_cli(["campaign", "run", "--protocol", "EP", "--runs", "2",
                    "--json", str(b)]) == 0
    assert "2 hits" in capsys.readouterr().err
    assert a.read_bytes() == b.read_bytes()


def test_campaign_shrink_clean_block_reports_nothing(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code = run_cli(
        ["campaign", "shrink", "--protocol", "1PC", "--runs", "2",
         "--out", str(tmp_path / "repro.json")]
    )
    assert code == 0
    assert "nothing to shrink" in capsys.readouterr().out


def test_campaign_replay_roundtrip(capsys, tmp_path, monkeypatch):
    """shrink → replay through the CLI, on the broken protocol."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.protocols.registry import temporary_protocol
    from tests.campaign.broken import BROKEN_NAME, broken_spec

    out = tmp_path / "repro.json"
    with temporary_protocol(broken_spec()):
        code = run_cli(
            ["campaign", "shrink", "--protocol", BROKEN_NAME, "--runs", "12",
             "--run-index", "11", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        capsys.readouterr()
        code = run_cli(["campaign", "replay", str(out), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert doc["reproduced"] is True
        assert "atomicity" in doc["expected"]


def test_campaign_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        run_cli(["campaign", "run", "--protocol", "3PC"])
