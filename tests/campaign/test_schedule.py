"""Schedule generation: determinism, serialisation, validation."""

import pytest

from repro.campaign.schedule import (
    WINDOW_KINDS,
    CampaignSchedule,
    FaultSpec,
    generate_schedule,
)
from repro.campaign.triggers import window
from repro.faults.injector import FaultPlan


def test_same_seed_same_schedule():
    a = generate_schedule("1PC", seed=42)
    b = generate_schedule("1PC", seed=42)
    assert a == b
    assert a.to_json() == b.to_json()
    assert a.describe() == b.describe()


def test_different_seeds_diverge():
    jsons = {generate_schedule("1PC", seed=s).to_json() for s in range(10)}
    assert len(jsons) > 1


def test_roundtrip_is_exact():
    for seed in range(10):
        sched = generate_schedule("EP", seed=seed, n_faults=4)
        assert CampaignSchedule.from_json(sched.to_json()) == sched


def test_generated_plans_install():
    plan = generate_schedule("1PC", seed=3, n_faults=5).build_plan()
    assert isinstance(plan, FaultPlan)
    assert len(plan.faults) == 5


def test_single_node_menu_drops_partition_and_link():
    for seed in range(30):
        sched = generate_schedule("1PC", seed=seed, nodes=("mds1",), n_faults=4)
        for spec in sched.faults:
            assert spec.kind not in ("partition", "link"), spec


def test_window_kinds_produce_triggers():
    hit = False
    for seed in range(30):
        for spec in generate_schedule("1PC", seed=seed, n_faults=4).faults:
            assert (spec.at is None) != (spec.trigger is None)
            if spec.trigger is not None:
                hit = True
    assert hit, "no window-targeted fault drawn in 30 seeds"


def test_empty_nodes_rejected():
    with pytest.raises(ValueError):
        generate_schedule("1PC", seed=0, nodes=())


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor", node="mds1", at=0.01)
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec(kind="crash", node="mds1")
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec(kind="crash", node="mds1", at=0.01, trigger=window("at-vote", "mds1"))
    with pytest.raises(ValueError, match="requires a node"):
        FaultSpec(kind="crash", at=0.01)
    with pytest.raises(ValueError, match="requires a peer"):
        FaultSpec(kind="link", node="mds1", at=0.01)


def test_schedule_validation():
    with pytest.raises(ValueError):
        CampaignSchedule(protocol="", seed=0)
    with pytest.raises(ValueError):
        CampaignSchedule(protocol="1PC", seed=0, n_ops=0)
    with pytest.raises(ValueError):
        CampaignSchedule(protocol="1PC", seed=0, hot_ratio=1.5)


def test_every_window_kind_builds():
    for entry in WINDOW_KINDS:
        kind, window_name = entry.split("@", 1)
        spec = FaultSpec(kind=kind, node="mds2", trigger=window(window_name, "mds2"))
        fault = spec.build()
        assert fault.when is not None
        assert spec.describe().startswith(f"{kind}(mds2")
