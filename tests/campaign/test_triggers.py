"""Unit tests for trace-window triggers."""

import pytest

from repro.campaign.triggers import WINDOWS, TraceTrigger, window
from repro.sim import Simulator, TraceLog


def fresh_trace():
    return TraceLog(Simulator())


def emit(trace, category, actor, **detail):
    trace.emit(category, actor, **detail)


def test_trigger_matches_category_actor_and_detail():
    trig = TraceTrigger(category="msg_send", actor="mds2", where=(("kind", "UPDATED"),))
    trace = fresh_trace()
    emit(trace, "msg_send", "mds1", kind="UPDATED")
    emit(trace, "msg_send", "mds2", kind="UPDATE_REQ")
    assert not any(trig.matches(r) for r in trace.records)
    emit(trace, "msg_send", "mds2", kind="UPDATED")
    assert any(trig.matches(r) for r in trace.records)


def test_compiled_predicate_is_incremental_and_counts():
    trig = TraceTrigger(category="fence", min_count=2)
    pred = trig.compile()
    trace = fresh_trace()
    assert pred(trace) is False
    emit(trace, "fence", "mds1")
    assert pred(trace) is False  # one hit < min_count
    emit(trace, "fence", "mds1")
    assert pred(trace) is True
    # Hits are cumulative: the predicate stays satisfied.
    assert pred(trace) is True


def test_compiled_predicates_do_not_share_state():
    trig = TraceTrigger(category="fence")
    a, b = trig.compile(), trig.compile()
    trace = fresh_trace()
    emit(trace, "fence", "mds1")
    assert a(trace) is True
    fresh = fresh_trace()
    assert b(fresh) is False


def test_roundtrip_preserves_trigger():
    trig = TraceTrigger(
        category="log_append", actor="mds2", where=(("sync", True),), min_count=3
    )
    again = TraceTrigger.from_dict(trig.to_dict())
    assert again == trig


def test_where_keys_sorted_for_stable_identity():
    a = TraceTrigger(category="x", where=(("b", 1), ("a", 2)))
    b = TraceTrigger(category="x", where=(("a", 2), ("b", 1)))
    assert a == b
    assert a.to_dict() == b.to_dict()


def test_validation():
    with pytest.raises(ValueError):
        TraceTrigger(category="")
    with pytest.raises(ValueError):
        TraceTrigger(category="fence", min_count=0)


@pytest.mark.parametrize("name", sorted(WINDOWS))
def test_protocol_windows_construct(name):
    trig = window(name, "mds2")
    assert isinstance(trig, TraceTrigger)
    assert trig.category


def test_unknown_window_rejected():
    with pytest.raises(KeyError):
        window("at-teatime", "mds2")
