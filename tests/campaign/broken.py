"""A deliberately broken 1PC variant for the campaign mutation self-test.

``1PC-BRK`` sends the worker's UPDATED message *before* forcing the
UPDATES+COMMITTED record — exactly the §III invariant the real
protocol's design hinges on (the forced commit *is* the vote).  With
an early vote, a worker crash inside the vote-to-force window leaves
the coordinator committed and the client acknowledged while the
worker's half of the transaction evaporates: a torn, non-atomic
namespace operation the campaign checker must flag.

Correct protocols only send UPDATED after the commit record is
durable, so the same crash window aborts or re-drives the transaction
instead — the mutation is invisible to them and the campaign stays
green.
"""

from __future__ import annotations

from typing import Generator

from repro.core.one_phase import OnePhaseCommitProtocol
from repro.net.message import Message
from repro.protocols.base import MsgKind, ProtocolSpec, TransactionAborted
from repro.protocols.registry import CAP_SHARED_LOG
from repro.storage.fencing import FencedError
from repro.storage.records import RecordKind
from repro.storage.wal import LogLostError

BROKEN_NAME = "1PC-BRK"


class EarlyVoteOnePhaseCommit(OnePhaseCommitProtocol):
    """1PC with the worker's vote moved ahead of its forced commit."""

    name = BROKEN_NAME

    def worker_session(self, first: Message, inbox) -> Generator:
        txn_id, coordinator = first.txn_id, first.src
        try:
            if first.kind != MsgKind.UPDATE_REQ or not first.payload.get("commit"):
                self.send(coordinator, MsgKind.NOT_PREPARED, txn_id)
                return None
            if self.wal.has(RecordKind.COMMITTED, txn_id) or self.store.has_applied(txn_id):
                self.send(coordinator, MsgKind.UPDATED, txn_id, ok=True)
                yield from self._await_ack_and_finalize(txn_id, coordinator, inbox)
                return None

            updates = self.decode_updates(first.payload)
            try:
                if self.server.fail_next_vote and not first.payload.get("decided"):
                    self.server.fail_next_vote = False
                    raise TransactionAborted("injected vote failure")
                yield from self.lock_all(txn_id, self._lock_targets(updates))
                yield from self.apply_updates(txn_id, updates)
                # BUG: vote first, force afterwards.  A crash between
                # the send and the force leaves a committed
                # coordinator pointing at a worker with no durable
                # commit record to recover from.
                self.send(coordinator, MsgKind.UPDATED, txn_id, ok=True)
                updates_rec = self.updates_rec(txn_id, self.store.updates_of(txn_id))
                yield from self.wal.force(
                    updates_rec,
                    self.state_rec(RecordKind.COMMITTED, txn_id, coordinator=coordinator),
                )
            except TransactionAborted as aborted:
                self.store.abort(txn_id)
                self.locks.release_all(txn_id)
                self.send(coordinator, MsgKind.NOT_PREPARED, txn_id, reason=aborted.reason)
                return None
            except (FencedError, LogLostError):
                self.store.abort(txn_id)
                self.locks.release_all(txn_id)
                self.obs.annotate("worker_fenced_mid_commit", self.me, txn=txn_id)
                return None
            self.store.commit_durable(txn_id)
            self.locks.release_all(txn_id)
            yield from self._await_ack_and_finalize(txn_id, coordinator, inbox)
            return None
        finally:
            self.server.close_session(txn_id)


def broken_spec() -> ProtocolSpec:
    """A registrable spec for the broken engine."""
    return ProtocolSpec(
        name=BROKEN_NAME,
        engine=EarlyVoteOnePhaseCommit,
        summary="1PC mutated to vote before forcing its commit (test only)",
        log_records=("STARTED", "REDO", "UPDATES", "COMMITTED", "ABORTED", "ENDED"),
        capabilities=frozenset({CAP_SHARED_LOG}),
    )
