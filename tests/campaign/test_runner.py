"""Campaign runner: clean verdicts, registry-wide smoke, determinism."""

import pytest

from repro.campaign.runner import run_campaign_cell
from repro.campaign.schedule import CampaignSchedule, generate_schedule
from repro.campaign.shrink import violation_kinds
from repro.exec import campaign_grid, run_sweep
from repro.exec.runners import execute_spec
from repro.protocols.registry import default_protocols


def test_faultless_run_is_clean():
    sched = CampaignSchedule(protocol="1PC", seed=0, n_ops=4)
    cluster, verdict = run_campaign_cell(sched)
    assert verdict["ok"] is True
    assert verdict["violations"] == []
    assert verdict["committed"] == 4
    assert verdict["faults_planned"] == 0
    assert cluster.obs.metrics.counter("campaign.runs").value == 1


def test_verdict_counts_fired_faults():
    sched = generate_schedule("1PC", seed=1)
    _cluster, verdict = run_campaign_cell(sched)
    assert verdict["faults_planned"] == 3
    assert 0 <= verdict["faults_fired"] <= 3


def test_campaign_grid_specs_are_cacheable_identities():
    a = campaign_grid("1PC", runs=3, seed=5)
    b = campaign_grid("1PC", runs=3, seed=5)
    assert [s.to_dict() for s in a] == [s.to_dict() for s in b]
    # Distinct runs get distinct schedules.
    assert len({s.campaign for s in a}) == 3
    # Round-trip through the serialised form preserves identity.
    for spec in a:
        assert type(spec).from_dict(spec.to_dict()).to_dict() == spec.to_dict()


def test_campaign_cell_executes_through_executor():
    spec = campaign_grid("1PC", runs=1, seed=2)[0]
    cell = execute_spec(spec)
    assert cell.spec.kind == "campaign"
    assert cell.verdict is not None
    assert violation_kinds(cell) == set()
    # Verdict survives the cell's JSON round-trip (the cache path).
    again = type(cell).from_dict(cell.to_dict())
    assert again.verdict == cell.verdict


@pytest.mark.slow
def test_registry_smoke_all_protocols_zero_violations():
    """Every registered protocol survives a seeded campaign block."""
    for proto in default_protocols():
        for spec in campaign_grid(proto, runs=2, seed=11):
            cell = execute_spec(spec)
            assert cell.verdict is not None
            assert cell.verdict["violations"] == [], (proto, spec.point)


@pytest.mark.slow
def test_serial_and_pooled_sweeps_byte_identical():
    specs = campaign_grid("1PC", runs=4, seed=3)
    serial = run_sweep(specs, kind="campaign", workers=1)
    pooled = run_sweep(specs, kind="campaign", workers=2)
    assert serial.to_json(canonical=True) == pooled.to_json(canonical=True)
