"""Mutation self-test: the campaign must catch a broken protocol.

``1PC-BRK`` votes before forcing its commit record (see
:mod:`tests.campaign.broken`).  A seeded campaign block must flag it,
the shrinker must reduce the catch to a tiny schedule, and the emitted
repro document must replay to the same violation.  The same block on
the real 1PC stays green — the checker has no false positives.

Everything here runs in-process (``execute_spec``): ``temporary_protocol``
registrations don't cross process-pool boundaries.
"""

import pytest

from repro.campaign.schedule import CampaignSchedule
from repro.campaign.shrink import shrink_spec, violation_kinds
from repro.exec import campaign_grid
from repro.exec.runners import execute_spec
from repro.protocols.registry import temporary_protocol
from tests.campaign.broken import BROKEN_NAME, broken_spec

#: The block the self-test sweeps; run 11 is the first catch.
RUNS, SEED = 12, 0


@pytest.mark.slow
def test_campaign_catches_and_shrinks_early_vote_mutation():
    with temporary_protocol(broken_spec()):
        caught = None
        for spec in campaign_grid(BROKEN_NAME, runs=RUNS, seed=SEED):
            kinds = violation_kinds(execute_spec(spec))
            if kinds:
                caught = (spec, kinds)
                break
        assert caught is not None, "campaign missed the broken protocol"
        spec, kinds = caught
        assert "atomicity" in kinds

        doc = shrink_spec(spec)
        shrunk = CampaignSchedule.from_json(doc["spec"]["campaign"])
        # Minimal repro: at most two faults (one crash in the
        # vote-to-force window suffices in practice).
        assert len(shrunk.faults) <= 2
        assert doc["verdict"]["violations"]

        # The document replays to the same violation kind.
        from repro.campaign.shrink import replay_repro

        _cell, reproduced = replay_repro(doc)
        assert reproduced


@pytest.mark.slow
def test_same_block_is_green_on_real_1pc():
    for spec in campaign_grid("1PC", runs=RUNS, seed=SEED):
        assert violation_kinds(execute_spec(spec)) == set(), spec.point
