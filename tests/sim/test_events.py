"""Unit tests for event primitives: succeed/fail, conditions, composition."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.errors import EventRefusedError


def test_event_starts_untriggered():
    sim = Simulator()
    e = sim.event()
    assert not e.triggered
    assert not e.processed


def test_value_before_trigger_raises():
    sim = Simulator()
    e = sim.event()
    with pytest.raises(EventRefusedError):
        _ = e.value
    with pytest.raises(EventRefusedError):
        _ = e.ok


def test_succeed_carries_value():
    sim = Simulator()
    e = sim.event()
    e.succeed("v")
    assert e.triggered and e.ok and e.value == "v"


def test_double_succeed_rejected():
    sim = Simulator()
    e = sim.event()
    e.succeed()
    with pytest.raises(EventRefusedError):
        e.succeed()


def test_fail_requires_exception():
    sim = Simulator()
    e = sim.event()
    with pytest.raises(TypeError):
        e.fail("not an exception")


def test_fail_delivers_exception_to_waiter():
    sim = Simulator()
    e = sim.event()
    seen = []

    def proc(sim):
        try:
            yield e
        except ValueError as exc:
            seen.append(str(exc))

    sim.process(proc(sim))
    e.fail(ValueError("boom"))
    sim.run()
    assert seen == ["boom"]


def test_succeed_with_delay():
    sim = Simulator()
    e = sim.event()
    e.succeed("late", delay=5.0)
    times = []

    def proc(sim):
        v = yield e
        times.append((sim.now, v))

    sim.process(proc(sim))
    sim.run()
    assert times == [(5.0, "late")]


def test_waiting_on_already_processed_event():
    sim = Simulator()
    e = sim.event()
    e.succeed("early")
    sim.run()
    got = []

    def proc(sim):
        v = yield e
        got.append(v)

    sim.process(proc(sim))
    sim.run()
    assert got == ["early"]


def test_allof_waits_for_all():
    sim = Simulator()
    results = []

    def worker(sim, delay, val):
        yield sim.timeout(delay)
        return val

    def waiter(sim, a, b):
        values = yield AllOf(sim, [a, b])
        results.append((sim.now, values[a], values[b]))

    a = sim.process(worker(sim, 1.0, "a"))
    b = sim.process(worker(sim, 3.0, "b"))
    sim.process(waiter(sim, a, b))
    sim.run()
    assert results == [(3.0, "a", "b")]


def test_anyof_triggers_on_first():
    sim = Simulator()
    results = []

    def worker(sim, delay, val):
        yield sim.timeout(delay)
        return val

    def waiter(sim, a, b):
        values = yield AnyOf(sim, [a, b])
        results.append((sim.now, dict(values)))

    a = sim.process(worker(sim, 1.0, "a"))
    b = sim.process(worker(sim, 3.0, "b"))
    sim.process(waiter(sim, a, b))
    sim.run()
    assert results[0][0] == 1.0
    assert list(results[0][1].values()) == ["a"]


def test_allof_empty_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_condition_fails_if_member_fails():
    sim = Simulator()
    good = sim.event()
    bad = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield AllOf(sim, [good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    bad.fail(RuntimeError("member failed"))
    good.succeed()
    sim.run()
    assert caught == ["member failed"]


def test_and_or_operators():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    both = a & b
    either = a | b
    assert isinstance(both, AllOf)
    assert isinstance(either, AnyOf)


def test_condition_rejects_cross_simulator_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(ValueError):
        AllOf(sim1, [sim1.event(), sim2.event()])


def test_condition_with_pretriggered_members():
    sim = Simulator()
    a = sim.event()
    a.succeed("pre")
    sim.run()
    b = sim.event()
    cond = AllOf(sim, [a, b])
    assert not cond.triggered
    b.succeed("post")
    sim.run()
    assert cond.ok
    assert cond.value[a] == "pre" and cond.value[b] == "post"
