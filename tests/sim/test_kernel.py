"""Unit tests for the DES kernel: clock, scheduling, run modes."""

import pytest

from repro.sim import Simulator
from repro.sim.errors import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_negative_delay_message_single_source():
    """The negative-delay check lives in ``Simulator._schedule`` alone;
    every scheduling path must surface its exact message."""
    sim = Simulator()
    with pytest.raises(ValueError, match=r"negative delay -1\.0"):
        sim.timeout(-1.0)
    with pytest.raises(ValueError, match=r"negative delay -0\.5"):
        sim.event().succeed(delay=-0.5)
    with pytest.raises(ValueError, match=r"negative delay -2"):
        sim.event().fail(RuntimeError("x"), delay=-2)
    with pytest.raises(ValueError, match=r"negative delay -3\.5"):
        sim._schedule(sim.event(), delay=-3.5)
    # The rejected timeout never reached the schedule.
    assert sim.peek() == float("inf")


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_time_in_past_rejected():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "payload"

    p = sim.process(proc(sim))
    assert sim.run(until=p) == "payload"
    assert sim.now == 1.0


def test_run_until_event_already_processed():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc(sim))
    sim.run()
    assert sim.run(until=p) == 42


def test_run_until_never_triggering_event_raises():
    sim = Simulator()
    never = sim.event("never")
    with pytest.raises(SimulationError):
        sim.run(until=never)


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append((sim.now, tag))

    sim.process(proc(sim, 3.0, "late"))
    sim.process(proc(sim, 1.0, "early"))
    sim.process(proc(sim, 2.0, "mid"))
    sim.run()
    assert order == [(1.0, "early"), (2.0, "mid"), (3.0, "late")]


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(7.0)

    sim.process(proc(sim))
    # The kick-start init event is at t=0.
    assert sim.peek() == 0.0
    sim.step()
    assert sim.peek() == 7.0


def test_peek_empty_is_infinite():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_events_processed_counter():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run()
    assert sim.events_processed >= 3  # init + two timeouts


def test_call_at_invokes_function():
    sim = Simulator()
    hits = []
    sim.call_at(3.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [3.0]


def test_call_at_in_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_run_all_collects_values():
    sim = Simulator()

    def proc(sim, delay, value):
        yield sim.timeout(delay)
        return value

    procs = [sim.process(proc(sim, d, d * 10)) for d in (3.0, 1.0, 2.0)]
    assert sim.run_all(procs) == [30.0, 10.0, 20.0]


def test_unobserved_event_failure_surfaces():
    sim = Simulator()
    boom = sim.event("boom")
    boom.fail(RuntimeError("unobserved"))
    with pytest.raises(RuntimeError, match="unobserved"):
        sim.run()


def test_deterministic_event_ordering_across_runs():
    def build_and_run():
        sim = Simulator()
        order = []

        def proc(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)
            yield sim.timeout(1.0)
            order.append(tag.upper())

        for tag in ("x", "y"):
            sim.process(proc(sim, tag))
        sim.run()
        return order

    assert build_and_run() == build_and_run()
