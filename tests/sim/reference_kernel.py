"""A frozen, minimal reference DES kernel for differential testing.

This module is a self-contained snapshot of the simulator core *before*
the hot-path overhaul: string-coded event states, eager callback lists,
a ``heapq`` loop that calls ``peek()``/``step()`` per iteration, one
fresh ``Event`` object per process resumption.  It is deliberately
unoptimized and must stay that way — its only job is to define the
semantics (pop order, timestamps, process return values) that the
optimized ``repro.sim`` kernel is required to reproduce exactly.

The differential harness in ``test_differential_kernel.py`` runs the
same seeded random program against both kernels and byte-compares the
``(time, priority, sequence)`` pop log and every process outcome.

Do not "improve" this file.  If the optimized kernel intentionally
changes semantics, that is a protocol-visible event ordering change and
needs golden traces regenerated — not a reference edit.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

PRIORITY_NORMAL = 1
PRIORITY_URGENT = 0

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class RefSimulationError(Exception):
    pass


class RefStopSimulation(Exception):
    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class RefInterrupt(Exception):
    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class RefEventRefusedError(RefSimulationError):
    pass


class RefEvent:
    """One-shot occurrence; the pre-overhaul Event, verbatim semantics."""

    def __init__(self, sim: "RefSimulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[RefEvent], None]] = []
        self._state = PENDING
        self._ok = True
        self._value: Any = None
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise RefEventRefusedError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise RefEventRefusedError(f"{self!r} has no value yet")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "RefEvent":
        if self.triggered:
            raise RefEventRefusedError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "RefEvent":
        if self.triggered:
            raise RefEventRefusedError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def trigger_like(self, other: "RefEvent") -> None:
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._value)

    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __and__(self, other: "RefEvent") -> "RefAllOf":
        return RefAllOf(self.sim, [self, other])

    def __or__(self, other: "RefEvent") -> "RefAnyOf":
        return RefAnyOf(self.sim, [self, other])


class RefTimeout(RefEvent):
    def __init__(self, sim: "RefSimulator", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim, name or f"timeout({delay})")
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        sim._schedule(self, delay)


class RefCondition(RefEvent):
    def __init__(
        self,
        sim: "RefSimulator",
        evaluate: Callable[[list[RefEvent], int], bool],
        events: Iterable[RefEvent],
        name: str = "",
    ):
        super().__init__(sim, name or evaluate.__name__)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event._state == PROCESSED:
                self._on_trigger(event)
            else:
                event.callbacks.append(self._on_trigger)

    def _collect(self) -> dict[RefEvent, Any]:
        return {e: e._value for e in self.events if e.triggered and e._ok}

    def _on_trigger(self, event: RefEvent) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self.events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def all_events(events: list[RefEvent], count: int) -> bool:
        return count == len(events)

    @staticmethod
    def any_event(events: list[RefEvent], count: int) -> bool:
        return count >= 1


class RefAllOf(RefCondition):
    def __init__(self, sim: "RefSimulator", events: Iterable[RefEvent]):
        super().__init__(sim, RefCondition.all_events, events, name="AllOf")


class RefAnyOf(RefCondition):
    def __init__(self, sim: "RefSimulator", events: Iterable[RefEvent]):
        super().__init__(sim, RefCondition.any_event, events, name="AnyOf")


class RefProcess(RefEvent):
    def __init__(self, sim: "RefSimulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[RefEvent] = None
        init = RefEvent(sim, name=f"init:{self.name}")
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    @property
    def target(self) -> Optional[RefEvent]:
        return self._waiting_on

    def interrupt(self, cause: Any = None) -> None:
        if not self.is_alive:
            return
        if self is self.sim.active_process:
            raise RefSimulationError("a process cannot interrupt itself")
        if self._waiting_on is not None and self._resume in self._waiting_on.callbacks:
            self._waiting_on.callbacks.remove(self._resume)
        self._waiting_on = None
        wakeup = RefEvent(self.sim, name=f"interrupt:{self.name}")
        wakeup.callbacks.append(self._resume)
        wakeup.fail(RefInterrupt(cause))
        wakeup.defused = True

    def kill(self, cause: Any = None) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None and self._resume in self._waiting_on.callbacks:
            self._waiting_on.callbacks.remove(self._resume)
        self._waiting_on = None
        self._generator.close()
        self.succeed(None)

    def _resume(self, event: RefEvent) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self.sim._active_process = self
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event.defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(target, RefEvent):
            exc = RefSimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
            try:
                self._generator.throw(exc)
            except BaseException:
                pass
            self.fail(exc)
            return
        if target.sim is not self.sim:
            self.fail(RefSimulationError("yielded an event belonging to another simulator"))
            return

        self._waiting_on = target
        if target.processed:
            relay = RefEvent(self.sim, name=f"relay:{self.name}")
            relay.callbacks.append(self._resume)
            relay.trigger_like(target)
            if not target._ok:
                relay.defused = True
        else:
            target.callbacks.append(self._resume)


class RefSimulator:
    """The pre-overhaul event loop: ``peek()`` + ``step()`` per event.

    ``pop_log`` records every ``(time, priority, sequence)`` triple in
    pop order — the ground truth the optimized kernel must match.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, RefEvent]] = []
        self._sequence = 0
        self._active_process: Optional[RefProcess] = None
        self.events_processed = 0
        self.pop_log: list[tuple[float, int, int]] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[RefProcess]:
        return self._active_process

    def _schedule(self, event: RefEvent, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._sequence, event))

    def event(self, name: str = "") -> RefEvent:
        return RefEvent(self, name)

    def timeout(self, delay: float, value: Any = None) -> RefTimeout:
        return RefTimeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> RefProcess:
        return RefProcess(self, generator, name=name)

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        if not self._heap:
            raise RefSimulationError("step() on an empty schedule")
        time, priority, seq, event = heapq.heappop(self._heap)
        if time < self._now:
            raise RefSimulationError("event scheduled in the past")
        self.pop_log.append((time, priority, seq))
        self._now = time
        self.events_processed += 1
        event._run_callbacks()
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: "float | RefEvent | None" = None) -> Any:
        stop_event: Optional[RefEvent] = None
        deadline = float("inf")
        if isinstance(until, RefEvent):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.callbacks.append(self._stop_on_event)
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"until={deadline} is in the past (now={self._now})")

        try:
            while self._heap and self.peek() <= deadline:
                self.step()
        except RefStopSimulation as stop:
            return stop.value
        finally:
            if stop_event is not None and self._stop_on_event in stop_event.callbacks:
                stop_event.callbacks.remove(self._stop_on_event)

        if stop_event is not None:
            if stop_event.triggered:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
            raise RefSimulationError(
                f"schedule drained at t={self._now} before {stop_event!r} triggered"
            )
        if deadline != float("inf"):
            self._now = deadline
        return None

    @staticmethod
    def _stop_on_event(event: RefEvent) -> None:
        if event._ok:
            raise RefStopSimulation(event._value)
        event.defused = True
        raise event._value
