"""Differential testing: optimized kernel vs the frozen reference.

Every scheduled pop in the optimized ``repro.sim`` kernel must happen
at exactly the same ``(time, priority, sequence)`` as in the frozen
pre-overhaul reference kernel (``reference_kernel.py``), and every
process must finish with exactly the same return value.  A seeded
generator produces hundreds of randomized schedules — timeout storms,
already-processed relays, AllOf/AnyOf fan-ins, caught failures,
cross-process waits and interrupts — and each one is interpreted twice,
once per kernel, from the same immutable program spec.

If this test fails, a hot-path "optimization" changed event ordering:
that is a semantic change, never a cleanup.
"""

from __future__ import annotations

import random
from typing import Any

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator
from tests.sim.reference_kernel import (
    RefAllOf,
    RefAnyOf,
    RefInterrupt,
    RefSimulator,
)

N_SCHEDULES = 200

# -- program generation -------------------------------------------------------
#
# A program spec is pure data (nested tuples/lists), generated once per
# seed and interpreted against both kernels — sharing the spec, not the
# RNG, guarantees the two kernels see the same program.


def make_program(rng: random.Random) -> list[list[tuple]]:
    """Random per-process op lists.  Delays are exact binary fractions
    scaled by small ints, so float arithmetic is bit-stable."""

    def delay() -> float:
        return rng.randrange(1, 64) * 0.0009765625  # k / 1024

    n_procs = rng.randrange(2, 7)
    program: list[list[tuple]] = []
    for i in range(n_procs):
        ops: list[tuple] = []
        for _ in range(rng.randrange(3, 9)):
            kind = rng.randrange(8)
            if kind <= 2:
                ops.append(("timeout", delay(), rng.randrange(1000)))
            elif kind == 3:
                # Yield an immediately-succeeded (triggered, not yet
                # processed) event.
                ops.append(("ready", rng.randrange(1000)))
            elif kind == 4:
                # Yield an event that is already *processed* — the
                # relay fast path.
                ops.append(("stale", delay(), rng.randrange(1000)))
            elif kind == 5:
                n = rng.randrange(2, 5)
                which = rng.choice(("allof", "anyof"))
                ops.append((which, [delay() for _ in range(n)]))
            elif kind == 6:
                # A failure the process catches (defused by _resume).
                ops.append(("fail_caught", delay()))
            else:
                # Wait on a peer process (may already be finished).
                ops.append(("wait_peer", rng.randrange(n_procs)))
        program.append(ops)
    # Sometimes add an interrupter poking a random worker mid-flight.
    if rng.random() < 0.5:
        program.append([("interrupt", rng.randrange(n_procs), delay())])
    return program


def build(sim: Any, api: dict[str, Any], program: list[list[tuple]]) -> list[Any]:
    """Instantiate ``program`` against a kernel; returns the processes."""
    allof, anyof, interrupt_exc = api["AllOf"], api["AnyOf"], api["Interrupt"]
    procs: list[Any] = []

    def worker(ops: list[tuple]):
        digest: list[Any] = []
        for op in ops:
            try:
                if op[0] == "timeout":
                    digest.append((yield sim.timeout(op[1], op[2])))
                elif op[0] == "ready":
                    event = sim.event()
                    event.succeed(op[1])
                    digest.append((yield event))
                elif op[0] == "stale":
                    event = sim.event()
                    event.succeed(op[2])
                    yield sim.timeout(op[1])
                    digest.append((yield event))
                elif op[0] in ("allof", "anyof"):
                    cond = allof if op[0] == "allof" else anyof
                    result = yield cond(sim, [sim.timeout(d, j) for j, d in enumerate(op[1])])
                    digest.append(sorted(result.values()))
                elif op[0] == "fail_caught":
                    event = sim.event()
                    event.fail(RuntimeError("boom"), delay=op[1])
                    # Pre-defused: if an interrupt detaches us before the
                    # failure fires, the orphaned failure must not crash
                    # the kernel (identically in both implementations).
                    event.defused = True
                    try:
                        yield event
                    except RuntimeError as exc:
                        digest.append(str(exc))
                elif op[0] == "wait_peer":
                    target = procs[op[1]]
                    if target is not None:
                        digest.append((yield target))
                elif op[0] == "interrupt":
                    yield sim.timeout(op[2])
                    procs[op[1]].interrupt("poke")
                    digest.append("poked")
            except interrupt_exc as exc:
                digest.append(("interrupted", str(exc.cause)))
        return digest

    for i, ops in enumerate(program):
        procs.append(None)
        procs[i] = sim.process(worker(ops), name=f"w{i}")
    return procs


# -- the differential run -----------------------------------------------------


def outcomes(procs: list[Any]) -> list[Any]:
    # Self- or circular waits deadlock (identically in both kernels):
    # such processes stay pending and have no value.
    return [p.value if p.triggered else "pending" for p in procs]


def run_reference(program: list[list[tuple]]):
    sim = RefSimulator()
    api = {"AllOf": RefAllOf, "AnyOf": RefAnyOf, "Interrupt": RefInterrupt}
    procs = build(sim, api, program)
    sim.run()
    return sim.pop_log, outcomes(procs), sim.now, sim.events_processed


def run_optimized_stepwise(program: list[list[tuple]]):
    """Drive the optimized kernel one step() at a time, logging pops."""
    sim = Simulator()
    api = {"AllOf": AllOf, "AnyOf": AnyOf, "Interrupt": Interrupt}
    procs = build(sim, api, program)
    pop_log: list[tuple[float, int, int]] = []
    while sim._heap:
        entry = sim._heap[0]
        pop_log.append((entry[0], entry[1], entry[2]))
        sim.step()
    return pop_log, outcomes(procs), sim.now, sim.events_processed


def run_optimized_inline(program: list[list[tuple]]):
    """Drive the optimized kernel through the inlined run() loop."""
    sim = Simulator()
    api = {"AllOf": AllOf, "AnyOf": AnyOf, "Interrupt": Interrupt}
    procs = build(sim, api, program)
    sim.run()
    return outcomes(procs), sim.now, sim.events_processed


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_differential_schedules(seed):
    program = make_program(random.Random(seed))

    ref_log, ref_values, ref_now, ref_count = run_reference(program)
    opt_log, opt_values, opt_now, opt_count = run_optimized_stepwise(program)

    assert opt_log == ref_log, f"pop order diverged (seed {seed})"
    assert opt_values == ref_values, f"process outcomes diverged (seed {seed})"
    assert opt_now == ref_now
    assert opt_count == ref_count

    # The inlined run() loop must agree with its own step()-wise drive.
    inl_values, inl_now, inl_count = run_optimized_inline(program)
    assert inl_values == opt_values
    assert inl_now == opt_now
    assert inl_count == opt_count


def test_differential_pop_log_nonempty():
    """Meta-check: the generator actually produces work."""
    program = make_program(random.Random(0))
    ref_log, _, _, count = run_reference(program)
    assert len(ref_log) == count > 0
