"""Unit tests for resources, stores and queues."""

import pytest

from repro.sim import PriorityResource, Queue, Resource, Simulator, Store


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_immediately_when_free():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grabbed = []

    def proc(sim):
        req = res.request()
        yield req
        grabbed.append(sim.now)
        res.release(req)

    sim.process(proc(sim))
    sim.run()
    assert grabbed == [0.0]


def test_resource_serializes_users_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def proc(sim, tag, hold):
        req = res.request()
        yield req
        order.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.process(proc(sim, "a", 2.0))
    sim.process(proc(sim, "b", 1.0))
    sim.process(proc(sim, "c", 1.0))
    sim.run()
    assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]


def test_resource_capacity_two_allows_parallelism():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    order = []

    def proc(sim, tag):
        req = res.request()
        yield req
        order.append((tag, sim.now))
        yield sim.timeout(1.0)
        res.release(req)

    for tag in "abc":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def proc(sim, tag):
        with res.request() as req:
            yield req
            order.append((tag, sim.now))
            yield sim.timeout(1.0)

    sim.process(proc(sim, "a"))
    sim.process(proc(sim, "b"))
    sim.run()
    assert order == [("a", 0.0), ("b", 1.0)]


def test_resource_cancel_waiting_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        res.release(req)

    def impatient(sim):
        req = res.request()
        yield sim.timeout(1.0)
        req.cancel()
        order.append("gave up")

    def patient(sim):
        req = res.request()
        yield req
        order.append(("patient", sim.now))
        res.release(req)

    sim.process(holder(sim))
    sim.process(impatient(sim))
    sim.process(patient(sim))
    sim.run()
    assert order == ["gave up", ("patient", 5.0)]


def test_resource_introspection():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim):
        req = res.request()
        yield req
        yield sim.timeout(2.0)
        res.release(req)

    def waiter(sim):
        req = res.request()
        yield req
        res.release(req)

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run(until=1.0)
    assert res.in_use == 1
    assert res.queue_length == 1
    sim.run()
    assert res.in_use == 0
    assert res.queue_length == 0


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder(sim):
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)

    def proc(sim, tag, prio):
        yield sim.timeout(0.1)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder(sim))
    sim.process(proc(sim, "low", 10))
    sim.process(proc(sim, "high", 1))
    sim.run()
    assert order == ["high", "low"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim):
        yield sim.timeout(2.0)
        store.put("x")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [("x", 2.0)]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    got = []

    def consumer(sim):
        got.append((yield store.get()))
        got.append((yield store.get()))

    sim.process(consumer(sim))
    sim.run()
    assert got == [1, 2]


def test_store_predicate_filters_items():
    sim = Simulator()
    store = Store(sim)
    store.put("skip")
    store.put("take")
    got = []

    def consumer(sim):
        item = yield store.get(lambda x: x == "take")
        got.append(item)

    sim.process(consumer(sim))
    sim.run()
    assert got == ["take"]
    assert list(store.items) == ["skip"]


def test_store_multiple_getters_served_in_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(consumer(sim, "first"))
    sim.process(consumer(sim, "second"))
    store.put("a")
    store.put("b")
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_queue_send_receive_aliases():
    sim = Simulator()
    q = Queue(sim)
    got = []

    def consumer(sim):
        got.append((yield q.receive()))

    sim.process(consumer(sim))
    q.send("msg")
    sim.run()
    assert got == ["msg"]


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
