"""Unit tests for processes: lifecycle, interrupts, kill, waiting."""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.errors import SimulationError


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "result"

    p = sim.process(proc(sim))
    sim.run()
    assert p.ok and p.value == "result"


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_process_waits_on_process():
    sim = Simulator()
    order = []

    def child(sim):
        yield sim.timeout(2.0)
        order.append("child")
        return 7

    def parent(sim):
        value = yield sim.process(child(sim))
        order.append(("parent", value, sim.now))

    sim.process(parent(sim))
    sim.run()
    assert order == ["child", ("parent", 7, 2.0)]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except KeyError:
            return "handled"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "handled"


def test_unhandled_process_exception_surfaces_in_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(proc(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    def interrupter(sim, target):
        yield sim.timeout(1.0)
        target.interrupt("crash")

    target = sim.process(sleeper(sim))
    sim.process(interrupter(sim, target))
    sim.run()
    assert log == [(1.0, "crash")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.5)

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt("too late")  # must not raise


def test_process_cannot_interrupt_itself():
    sim = Simulator()

    def selfish(sim):
        # Yield once so that self-reference is available.
        yield sim.timeout(0.0)

    sim.process(selfish(sim))

    def meta(sim):
        yield sim.timeout(0.0)

    # Build a process that tries to interrupt itself.
    holder = {}

    def suicidal(sim):
        yield sim.timeout(0.1)
        holder["proc"].interrupt()
        yield sim.timeout(1.0)

    holder["proc"] = sim.process(suicidal(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupted_process_original_event_still_fires():
    sim = Simulator()
    log = []

    def sleeper(sim):
        t = sim.timeout(5.0)
        try:
            yield t
        except Interrupt:
            log.append("interrupted")
        yield sim.timeout(10.0)
        log.append(sim.now)

    target = sim.process(sleeper(sim))

    def interrupter(sim):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.process(interrupter(sim))
    sim.run()
    assert log == ["interrupted", 11.0]


def test_kill_terminates_without_resume():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(10.0)
            log.append("survived")
        finally:
            log.append("cleanup")

    p = sim.process(victim(sim))

    def killer(sim):
        yield sim.timeout(1.0)
        p.kill()

    sim.process(killer(sim))
    sim.run()
    assert log == ["cleanup"]
    assert p.ok and p.value is None


def test_kill_dead_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.1)

    p = sim.process(quick(sim))
    sim.run()
    p.kill()


def test_kill_before_first_resume_is_safe():
    """Killing a process whose kick-start event has not fired yet must
    not poison the schedule (regression: crash injection at t=0)."""
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    p.kill()  # the init event is still queued
    sim.run()
    assert not p.is_alive and p.ok


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_foreign_event_fails_process():
    sim1, sim2 = Simulator(), Simulator()

    def bad(sim, foreign):
        yield foreign

    sim1.process(bad(sim1, sim2.event()))
    with pytest.raises(SimulationError):
        sim1.run()


def test_is_alive_and_target():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(3.0)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run(until=1.0)
    assert p.is_alive
    assert p.target is not None
    sim.run()
    assert not p.is_alive
    assert p.target is None


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def proc(sim, i):
        yield sim.timeout(float(i % 7) / 10.0)
        done.append(i)

    for i in range(200):
        sim.process(proc(sim, i))
    sim.run()
    assert sorted(done) == list(range(200))
