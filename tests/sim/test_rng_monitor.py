"""Unit tests for RNG streams, trace log and monitors."""

import pytest

from repro.sim import Monitor, RngRegistry, Simulator, TraceLog


def test_rng_same_seed_same_draws():
    a = RngRegistry(42).stream("net")
    b = RngRegistry(42).stream("net")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_streams_independent():
    reg = RngRegistry(42)
    net_first = reg.stream("net").random()
    # Drawing from another stream must not perturb "net".
    reg2 = RngRegistry(42)
    reg2.stream("disk").random()
    assert reg2.stream("net").random() == net_first


def test_rng_different_seeds_differ():
    a = RngRegistry(1).stream("s").random()
    b = RngRegistry(2).stream("s").random()
    assert a != b


def test_rng_spawn_derives_child():
    reg = RngRegistry(7)
    child1 = reg.spawn("node1")
    child2 = reg.spawn("node2")
    assert child1.root_seed != child2.root_seed
    assert RngRegistry(7).spawn("node1").root_seed == child1.root_seed


def test_rng_exponential_positive_and_validated():
    reg = RngRegistry(0)
    assert reg.exponential("e", 1.0) > 0
    with pytest.raises(ValueError):
        reg.exponential("e", 0.0)


def test_rng_bernoulli_validated():
    reg = RngRegistry(0)
    with pytest.raises(ValueError):
        reg.bernoulli("b", 1.5)
    assert reg.bernoulli("always", 1.0) is True
    assert reg.bernoulli("never", 0.0) is False


def test_rng_integers_in_range():
    reg = RngRegistry(3)
    for _ in range(50):
        v = reg.integers("i", 2, 4)
        assert 2 <= v <= 4


def test_rng_shuffled_is_permutation():
    reg = RngRegistry(5)
    out = reg.shuffled("s", range(10))
    assert sorted(out) == list(range(10))


def test_tracelog_emit_and_select():
    sim = Simulator()
    trace = TraceLog(sim)
    trace.emit("msg", "mds1", kind="PREPARE", txn=1)
    trace.emit("msg", "mds2", kind="PREPARED", txn=1)
    trace.emit("log_write", "mds1", sync=True)
    assert len(trace) == 3
    assert trace.count("msg") == 2
    assert trace.count("msg", kind="PREPARE") == 1
    assert [r.actor for r in trace.select("log_write")] == ["mds1"]


def test_tracelog_records_simulation_time():
    sim = Simulator()
    trace = TraceLog(sim)

    def proc(sim):
        yield sim.timeout(2.0)
        trace.emit("tick", "p")

    sim.process(proc(sim))
    sim.run()
    assert trace.records[0].time == 2.0


def test_tracelog_disabled_records_nothing():
    sim = Simulator()
    trace = TraceLog(sim, enabled=False)
    trace.emit("msg", "a")
    assert len(trace) == 0


def test_tracelog_categories_counts_sorted():
    sim = Simulator()
    trace = TraceLog(sim)
    trace.emit("msg", "a")
    trace.emit("lock", "a")
    trace.emit("msg", "b")
    assert trace.categories() == {"lock": 1, "msg": 2}
    assert list(trace.categories()) == ["lock", "msg"]


def test_tracelog_clear_drops_everything():
    sim = Simulator()
    trace = TraceLog(sim)
    for _ in range(4):
        trace.emit("msg", "a")
    assert trace.clear() == 4
    assert len(trace) == 0 and trace.categories() == {}
    assert trace.clear() == 0
    # The log keeps accepting records after a clear (warm-up pattern).
    trace.emit("msg", "a")
    assert len(trace) == 1


def test_tracelog_predicate_select():
    sim = Simulator()
    trace = TraceLog(sim)
    for i in range(5):
        trace.emit("msg", "a", seq=i)
    assert len(trace.select(predicate=lambda r: r.get("seq", 0) >= 3)) == 2


def test_monitor_statistics():
    mon = Monitor("queue")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
        mon.observe(t, v)
    assert mon.mean == 2.0
    assert mon.maximum == 3.0
    assert mon.minimum == 1.0
    assert len(mon) == 3


def test_monitor_empty_raises():
    mon = Monitor()
    with pytest.raises(ValueError):
        _ = mon.mean


def test_monitor_time_weighted_mean():
    mon = Monitor()
    mon.observe(0.0, 0.0)
    mon.observe(1.0, 10.0)
    # 0 for 1s, 10 for 1s -> 5 average over [0, 2].
    assert mon.time_weighted_mean(2.0) == 5.0
