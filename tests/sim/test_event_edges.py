"""Additional event/kernel edge cases."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator, Timeout
from repro.sim.errors import EventRefusedError


def test_trigger_like_copies_success():
    sim = Simulator()
    src, dst = sim.event(), sim.event()
    src.succeed("payload")
    dst.trigger_like(src)
    assert dst.triggered and dst.ok and dst.value == "payload"


def test_trigger_like_copies_failure():
    sim = Simulator()
    src, dst = sim.event(), sim.event()
    src.fail(ValueError("boom"))
    src.defused = True
    dst.trigger_like(src)
    dst.defused = True
    assert dst.triggered and not dst.ok


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield Timeout(sim, 1.0, value="tick")
        got.append(value)

    sim.process(proc(sim))
    sim.run()
    assert got == ["tick"]


def test_anyof_value_contains_only_triggered_members():
    sim = Simulator()
    fast, slow = sim.event(), sim.event()
    results = []

    def waiter(sim):
        values = yield AnyOf(sim, [fast, slow])
        results.append(dict(values))

    sim.process(waiter(sim))
    fast.succeed("F")
    sim.run(until=1.0)
    slow.succeed("S")
    sim.run()
    assert results == [{fast: "F"}]


def test_allof_value_maps_every_member():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    results = []

    def waiter(sim):
        values = yield AllOf(sim, [a, b])
        results.append((values[a], values[b]))

    sim.process(waiter(sim))
    a.succeed(1)
    b.succeed(2)
    sim.run()
    assert results == [(1, 2)]


def test_condition_with_duplicate_member_counts_once_per_entry():
    sim = Simulator()
    e = sim.event()
    cond = AllOf(sim, [e, e])
    e.succeed("x")
    sim.run()
    assert cond.ok
    assert cond.value[e] == "x"


def test_process_value_before_completion_refused():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    with pytest.raises(EventRefusedError):
        _ = p.value
    sim.run()
    assert p.value is None


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf(sim):
        yield sim.timeout(1.0)
        return 1

    def middle(sim):
        value = yield sim.process(leaf(sim))
        yield sim.timeout(1.0)
        return value + 1

    def root(sim):
        value = yield sim.process(middle(sim))
        return value + 1

    p = sim.process(root(sim))
    sim.run()
    assert p.value == 3
    assert sim.now == 2.0


def test_event_succeed_then_fail_refused():
    sim = Simulator()
    e = sim.event()
    e.succeed()
    with pytest.raises(EventRefusedError):
        e.fail(RuntimeError("late"))


def test_send_to_self_is_delivered():
    from repro.config import NetworkParams
    from repro.net import Network

    sim = Simulator()
    net = Network(sim, NetworkParams(latency=1e-3))
    a = net.attach("a")
    got = []

    def receiver(sim):
        msg = yield a.receive()
        got.append((msg.kind, sim.now))

    sim.process(receiver(sim))
    a.send_to("a", "SELF")
    sim.run()
    assert got == [("SELF", 1e-3)]


def test_three_way_partition_isolates_all_groups():
    from repro.config import NetworkParams
    from repro.net import Network

    sim = Simulator()
    net = Network(sim, NetworkParams())
    for n in ("a", "b", "c"):
        net.attach(n)
    net.partition({"a"}, {"b"}, {"c"})
    assert not net.connected("a", "b")
    assert not net.connected("b", "c")
    assert not net.connected("a", "c")
    assert net.connected("a", "a")
