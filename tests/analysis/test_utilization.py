"""Trace-derived utilisation and contention statistics."""

import pytest

from repro.analysis.utilization import (
    device_utilization,
    lock_contention,
    message_stats,
    txn_breakdown,
)
from repro.workloads import run_burst


@pytest.fixture(scope="module")
def burst_trace():
    run_burst("1PC", n=20)
    # run_burst disables tracing by default; re-run one with tracing.
    from repro.harness.scenarios import distributed_create_cluster

    cluster, client = distributed_create_cluster("1PC", trace=True)
    for i in range(20):
        client.submit(client.plan_create(f"/dir1/f{i}"))
    while len(cluster.outcomes) < 20:
        cluster.sim.step()
    cluster.sim.run(until=cluster.sim.now + 30.0)
    return cluster.trace


def test_device_utilization_bounds(burst_trace):
    utils = device_utilization(burst_trace)
    assert utils, "expected disk activity"
    for util in utils.values():
        assert 0.0 < util.utilization <= 1.0
        assert util.operations > 0
        assert util.bytes_moved > 0


def test_coordinator_disk_is_busiest_under_1pc(burst_trace):
    utils = device_utilization(burst_trace)
    # 1PC writes STARTED+REDO and UPDATES+COMMITTED at the coordinator
    # vs UPDATES+COMMITTED (+tiny ENDED) at the worker.
    assert utils["disk:mds1"].bytes_moved > utils["disk:mds2"].bytes_moved


def test_empty_trace_yields_no_devices():
    from repro.sim import Simulator, TraceLog

    assert device_utilization(TraceLog(Simulator())) == {}


def test_lock_contention_on_shared_directory(burst_trace):
    contention = lock_contention(burst_trace)
    dir_key = "dir:/dir1"
    assert dir_key in contention
    stats = contention[dir_key]
    assert stats.grants == 20
    assert stats.waits >= 18  # all but the first couple had to wait
    assert stats.max_wait >= stats.mean_wait > 0


def test_message_stats_counts(burst_trace):
    stats = message_stats(burst_trace)
    assert stats["UPDATE_REQ"].sent == 20
    assert stats["UPDATE_REQ"].received == 20
    assert stats["UPDATE_REQ"].dropped == 0
    assert stats["ACK"].sent == 20


def test_txn_breakdown_accounts_for_total(burst_trace):
    # The last transaction waited behind 19 others: its lock wait
    # dominates.
    breakdown = txn_breakdown(burst_trace, 20)
    assert breakdown is not None
    assert breakdown.committed
    assert breakdown.total > 0
    assert breakdown.lock_wait + breakdown.log_force_wait <= breakdown.total + 1e-9
    assert breakdown.other >= 0
    first = txn_breakdown(burst_trace, 1)
    assert first.lock_wait <= breakdown.lock_wait


def test_txn_breakdown_unknown_txn():
    from repro.sim import Simulator, TraceLog

    assert txn_breakdown(TraceLog(Simulator()), 42) is None


def test_breakdown_identifies_lock_wait_as_dominant_for_late_txns(burst_trace):
    late = txn_breakdown(burst_trace, 20)
    assert late.lock_wait > late.log_force_wait
