"""Trace export / import round trips."""

import io
import json

from repro.analysis.traceio import (
    dump_trace,
    load_trace_records,
    summarize,
    trace_to_string,
)
from tests.protocols.conftest import drain, make_cluster, run_create


def traced_run():
    cluster, client = make_cluster("1PC")
    run_create(cluster, client)
    drain(cluster)
    return cluster.trace


def test_dump_and_load_roundtrip(tmp_path):
    trace = traced_run()
    path = tmp_path / "trace.jsonl"
    count = dump_trace(trace, path)
    assert count == len(trace)
    records = load_trace_records(path)
    assert len(records) == count
    assert [r.category for r in records] == [r.category for r in trace.records]
    assert [r.time for r in records] == [r.time for r in trace.records]


def test_dump_to_stream():
    trace = traced_run()
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    lines = [line for line in buffer.getvalue().splitlines() if line]
    assert len(lines) == len(trace)
    # Every line is valid JSON with the expected keys.
    for line in lines[:5]:
        raw = json.loads(line)
        assert set(raw) == {"t", "cat", "actor", "detail"}


def test_trace_string_is_deterministic():
    a = trace_to_string(traced_run())
    b = trace_to_string(traced_run())
    assert a == b


def test_nonjson_payloads_are_stringified():
    trace = traced_run()
    text = trace_to_string(trace)
    # Lock records carry ObjectId payloads; they must serialise.
    assert "dir:/dir1" in text or "dir1" in text
    records = load_trace_records(io.StringIO(text))
    lock_grants = [r for r in records if r.category == "lock_grant"]
    assert lock_grants and isinstance(lock_grants[0].detail["obj"], str)


def test_summarize_counts_categories():
    trace = traced_run()
    counts = summarize(trace.records)
    assert counts["msg_send"] >= 3
    assert counts["log_append"] >= 3
    assert sum(counts.values()) == len(trace)


def test_load_skips_blank_lines():
    records = load_trace_records(io.StringIO('\n{"t":1,"cat":"x","actor":"a"}\n\n'))
    assert len(records) == 1
    assert records[0].detail == {}
