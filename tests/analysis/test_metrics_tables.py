"""Unit tests for metrics and table rendering."""

import math

import pytest

from repro.analysis.metrics import LatencyStats, abort_rate, percentile, throughput
from repro.analysis.tables import render_bar_chart, render_table
from repro.protocols.base import TxnOutcome


def outcome(txn_id, submitted, replied, committed=True):
    return TxnOutcome(
        txn_id=txn_id,
        op="CREATE",
        path=f"/d/f{txn_id}",
        committed=committed,
        submitted_at=submitted,
        replied_at=replied,
        finished_at=replied,
        coordinator="mds1",
    )


def test_throughput_over_makespan():
    outcomes = [outcome(1, 0.0, 1.0), outcome(2, 0.0, 2.0)]
    assert throughput(outcomes) == pytest.approx(1.0)


def test_throughput_committed_only_by_default():
    outcomes = [outcome(1, 0.0, 1.0), outcome(2, 0.0, 2.0, committed=False)]
    assert throughput(outcomes) == pytest.approx(1.0)
    assert throughput(outcomes, committed_only=False) == pytest.approx(1.0)


def test_throughput_empty_is_zero():
    assert throughput([]) == 0.0


def test_throughput_degenerate_window_is_zero():
    # All outcomes at one timestamp: no elapsed time, so zero — not inf
    # (regression: this used to return math.inf).
    assert throughput([outcome(1, 0.0, 0.0)]) == 0.0
    assert not math.isinf(throughput([outcome(1, 5.0, 5.0), outcome(2, 5.0, 5.0)]))


def test_percentile_values():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)
    assert percentile([7.0], 50) == 7.0


def test_percentile_sorts_unsorted_input():
    # Regression: the historical signature required pre-sorted input
    # and silently interpolated garbage otherwise.
    shuffled = [4.0, 1.0, 3.0, 2.0]
    assert percentile(shuffled, 0) == 1.0
    assert percentile(shuffled, 100) == 4.0
    assert percentile(shuffled, 50) == percentile(sorted(shuffled), 50)
    # The input list itself must not be reordered in place.
    assert shuffled == [4.0, 1.0, 3.0, 2.0]


def test_latency_stats_from_outcomes():
    outcomes = [outcome(i, 0.0, float(i)) for i in range(1, 11)]
    stats = LatencyStats.from_outcomes(outcomes)
    assert stats.count == 10
    assert stats.minimum == 1.0 and stats.maximum == 10.0
    assert stats.mean == pytest.approx(5.5)
    assert stats.p50 == pytest.approx(5.5)
    assert stats.p99 > stats.p95 > stats.p50


def test_latency_stats_empty_raises():
    with pytest.raises(ValueError):
        LatencyStats.from_outcomes([])


def test_abort_rate():
    outcomes = [outcome(1, 0, 1), outcome(2, 0, 1, committed=False)]
    assert abort_rate(outcomes) == 0.5
    assert abort_rate([]) == 0.0


def test_render_table_alignment():
    text = render_table(["A", "Bee"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "A" in lines[1] and "Bee" in lines[1]
    assert all("|" in line for line in lines[1:] if "-" not in line)


def test_render_bar_chart_baseline_annotation():
    text = render_bar_chart({"PrN": 10.0, "1PC": 15.0}, baseline="PrN", unit="tx/s")
    assert "+50.00% vs PrN" in text
    assert "tx/s" in text


def test_render_bar_chart_empty_raises():
    with pytest.raises(ValueError):
        render_bar_chart({})
