"""Serial-equivalence verification of concurrent runs."""

import pytest

from repro.analysis.serializability import (
    replay_serial,
    verify_serial_equivalence,
)
from repro.fs import AddDentry, OpPlan
from repro.harness.scenarios import distributed_create_cluster


def run_concurrent_creates(protocol, n=15):
    cluster, client = distributed_create_cluster(protocol)
    plans = {}
    for i in range(n):
        plan = client.plan_create(f"/dir1/f{i}")
        plans[(plan.op, plan.path)] = plan
        client.submit(plan)
    while len(cluster.outcomes) < n:
        cluster.sim.step()
    cluster.sim.run(until=cluster.sim.now + 30.0)
    return cluster, plans


def test_concurrent_creates_are_serializable(protocol):
    cluster, plans = run_concurrent_creates(protocol)
    violations = verify_serial_equivalence(cluster, plans, {"/dir1": "mds1"})
    assert violations == []


def test_create_delete_interleaving_is_serializable():
    cluster, client = distributed_create_cluster("1PC")
    plans = {}

    def driver(sim):
        for i in range(8):
            plan = client.plan_create(f"/dir1/f{i}")
            plans[(plan.op, plan.path)] = plan
            result = yield from client.run(plan)
            assert result["committed"]
        for i in range(0, 8, 2):
            plan = client.plan_delete(f"/dir1/f{i}")
            plans[(plan.op, plan.path)] = plan
            result = yield from client.run(plan)
            assert result["committed"]

    p = cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=p)
    cluster.sim.run(until=cluster.sim.now + 30.0)
    violations = verify_serial_equivalence(cluster, plans, {"/dir1": "mds1"})
    assert violations == []


def test_aborted_transactions_excluded_from_replay():
    cluster, client = distributed_create_cluster("1PC")
    plans = {}
    # First create aborts (vote refusal); the retry commits.
    cluster.servers["mds2"].fail_next_vote = True

    def driver(sim):
        a = client.plan_create("/dir1/x")
        plans[(a.op, a.path)] = a
        r1 = yield from client.run(a)
        b = client.plan_create("/dir1/x")
        plans[(b.op, b.path)] = b  # overwrites; same key, same effect
        r2 = yield from client.run(b)
        return r1["committed"], r2["committed"]

    p = cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=p)
    cluster.sim.run(until=cluster.sim.now + 30.0)
    assert p.value == (False, True)
    violations = verify_serial_equivalence(cluster, plans, {"/dir1": "mds1"})
    assert violations == []


def test_replay_serial_detects_impossible_history():
    plan = OpPlan(
        op="CREATE",
        path="/d/x",
        updates={"mds1": [AddDentry("/d", "x", 1), AddDentry("/d", "x", 2)]},
        coordinator="mds1",
    )
    from repro.fs import UpdateError

    with pytest.raises(UpdateError):
        replay_serial([plan], {"/d": "mds1"})


def test_verify_flags_divergent_state():
    cluster, plans = run_concurrent_creates("1PC", n=4)
    # Corrupt the run state behind the protocol's back.
    cluster.store_of("mds1").apply(999, AddDentry("/dir1", "phantom", 424242))
    cluster.store_of("mds1").commit_durable(999)
    violations = verify_serial_equivalence(cluster, plans, {"/dir1": "mds1"})
    assert violations
    assert any(v.kind == "directories-differ" for v in violations)
    assert "phantom" in str(violations[0])


def test_precedence_graph_acyclic_for_concurrent_runs(protocol):
    from repro.analysis.serializability import (
        assert_conflict_serializable,
        precedence_graph,
    )

    cluster, _plans = run_concurrent_creates(protocol, n=12)
    edges = precedence_graph(cluster.trace)
    # Twelve creates through one directory: a long chain of conflicts.
    assert len(edges) >= 11
    assert_conflict_serializable(cluster.trace)


def test_precedence_graph_detects_artificial_cycle():
    from repro.analysis.serializability import assert_conflict_serializable
    from repro.sim import Simulator, TraceLog

    sim = Simulator()
    trace = TraceLog(sim)
    # txn 1 then 2 on object A; txn 2 then 1 on object B: a cycle.
    trace.emit("lock_grant", "m", txn=1, obj="A")
    trace.emit("lock_grant", "m", txn=2, obj="A")
    trace.emit("lock_grant", "m", txn=2, obj="B")
    trace.emit("lock_grant", "m", txn=1, obj="B")
    with pytest.raises(AssertionError, match="conflict cycle"):
        assert_conflict_serializable(trace)


def test_missing_plan_raises():
    cluster, plans = run_concurrent_creates("1PC", n=3)
    plans.pop(("CREATE", "/dir1/f0"))
    with pytest.raises(KeyError):
        verify_serial_equivalence(cluster, plans, {"/dir1": "mds1"})
