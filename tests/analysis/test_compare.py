"""Trace-diff tool tests."""

from repro.analysis.compare import compare_traces
from repro.sim.monitor import TraceRecord
from tests.protocols.conftest import drain, make_cluster, run_create


def traced_run(protocol="1PC", path="/dir1/f0"):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client, path)
    drain(cluster)
    return cluster.trace.records


def test_identical_runs_compare_identical():
    diff = compare_traces(traced_run(), traced_run(), compare_details=True)
    assert diff.identical
    assert diff.count_deltas == {}


def test_different_protocols_diverge():
    diff = compare_traces(traced_run("PrN"), traced_run("1PC"))
    assert not diff.identical
    assert diff.first_divergence is not None
    # PrN has more messages and writes.
    assert "msg_send" in diff.count_deltas or "log_append" in diff.count_deltas


def test_prefix_trace_reported_as_extra_records():
    records = traced_run()
    diff = compare_traces(records, records[:-3])
    assert not diff.identical
    assert diff.first_divergence is None
    assert "extra records" in diff.detail


def test_payload_difference_detected_only_with_flag():
    a = [TraceRecord(1.0, "msg_send", "mds1", {"kind": "PING"})]
    b = [TraceRecord(1.0, "msg_send", "mds1", {"kind": "PONG"})]
    assert compare_traces(a, b).identical
    deep = compare_traces(a, b, compare_details=True)
    assert not deep.identical
    assert "payloads differ" in deep.detail


def test_empty_traces_identical():
    assert compare_traces([], []).identical


def test_roundtripped_jsonl_compares_clean(tmp_path):
    from repro.analysis.traceio import dump_trace, load_trace_records
    from repro.sim import Simulator, TraceLog

    cluster_records = traced_run()
    # Rebuild a TraceLog-like carrier for dump_trace.
    sim = Simulator()
    log = TraceLog(sim)
    log.records = list(cluster_records)
    path = tmp_path / "t.jsonl"
    dump_trace(log, path)
    loaded = load_trace_records(path)
    diff = compare_traces(cluster_records, loaded)
    assert diff.identical
