"""Validation of the analytical model against the simulator."""

import pytest

from repro.analysis.costs import measure_protocol_costs
from repro.analysis.model import predict, predict_figure6, predicted_gain_over_prn
from repro.workloads import run_burst

PROTOCOLS = ("PrN", "PrC", "EP", "1PC")


@pytest.fixture(scope="module")
def sim_throughputs():
    return {p: run_burst(p, n=60).throughput for p in PROTOCOLS}


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        predict("3PC")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_model_within_12_percent_of_simulation(protocol, sim_throughputs):
    pred = predict(protocol)
    sim = sim_throughputs[protocol]
    assert abs(pred.throughput / sim - 1.0) < 0.12, (
        f"{protocol}: model {pred.throughput:.1f} vs sim {sim:.1f}"
    )


def test_model_preserves_figure6_ordering():
    preds = predict_figure6()
    t = {name: p.throughput for name, p in preds.items()}
    assert t["1PC"] > t["EP"] > t["PrC"] > t["PrN"]


def test_model_gain_signs_match_paper():
    gains = predicted_gain_over_prn()
    assert gains["1PC"] > 40.0
    assert 0.0 < gains["PrC"] < gains["EP"] < gains["1PC"]


def test_model_solo_latency_ordering_matches_measurement():
    measured = {p: measure_protocol_costs(p).client_latency for p in PROTOCOLS}
    modelled = {p: predict(p).solo_latency for p in PROTOCOLS}
    def order(d):
        return sorted(d, key=d.get)

    assert order(measured) == order(modelled) == ["1PC", "EP", "PrC", "PrN"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_model_solo_latency_close_to_measurement(protocol):
    measured = measure_protocol_costs(protocol).client_latency
    modelled = predict(protocol).solo_latency
    assert abs(modelled / measured - 1.0) < 0.25, (
        f"{protocol}: model {modelled * 1e3:.2f} ms vs measured {measured * 1e3:.2f} ms"
    )


def test_cycle_is_max_of_components():
    pred = predict("1PC")
    assert pred.cycle == max(pred.lock_hold, pred.coordinator_disk, pred.worker_disk)
    assert pred.throughput == pytest.approx(1.0 / pred.cycle)


def test_model_tracks_parameter_changes():
    """Doubling the device bandwidth must raise predicted throughput;
    adding network latency must lower it."""
    from dataclasses import replace

    from repro.config import SimulationParams

    base = SimulationParams.paper_defaults()
    fast_disk = base.with_(storage=replace(base.storage, bandwidth=base.storage.bandwidth * 2))
    slow_net = base.with_(network=replace(base.network, latency=5e-3))
    for protocol in PROTOCOLS:
        assert predict(protocol, fast_disk).throughput > predict(protocol, base).throughput
        assert predict(protocol, slow_net).throughput < predict(protocol, base).throughput
