"""The headline correctness artifact: measured Table I == paper's Table I."""

import pytest

from repro.analysis.costs import TABLE1, CostRow, measure_protocol_costs
from repro.harness.table1 import run_table1


@pytest.mark.parametrize("protocol", sorted(TABLE1))
def test_measured_costs_match_paper(protocol):
    measured = measure_protocol_costs(protocol)
    assert measured.row == TABLE1[protocol], (
        f"{protocol}: measured {measured.row} != paper {TABLE1[protocol]}"
    )


def test_paper_rows_transcribed_correctly():
    assert TABLE1["PrN"] == CostRow(5, 1, 4, 1, 4, 4)
    assert TABLE1["PrC"] == CostRow(4, 1, 3, 0, 3, 2)
    assert TABLE1["EP"] == CostRow(4, 1, 3, 0, 1, 0)
    assert TABLE1["1PC"] == CostRow(3, 1, 2, 0, 1, 0)


def test_one_pc_strictly_dominates_prn():
    a, b = TABLE1["1PC"], TABLE1["PrN"]
    assert a.sync_total < b.sync_total
    assert a.sync_critical < b.sync_critical
    assert a.msgs_total < b.msgs_total
    assert a.msgs_critical < b.msgs_critical


def test_client_latency_reflects_critical_path():
    """Fewer critical-path writes must mean lower client latency."""
    latencies = {p: measure_protocol_costs(p).client_latency for p in TABLE1}
    assert latencies["1PC"] < latencies["EP"] <= latencies["PrC"] < latencies["PrN"]


def test_render_table_mentions_all_protocols():
    text = run_table1(measured=False)
    for name in TABLE1:
        assert name in text
    assert "Table I" in text


@pytest.mark.parametrize(
    "spec",
    [s for s in __import__("repro.protocols.registry", fromlist=["specs"]).specs()
     if s.table1_row is not None and s.name not in TABLE1],
    ids=lambda s: s.name,
)
def test_extension_protocols_match_their_claimed_rows(spec):
    """Every extension spec that claims a Table-I row must measure it."""
    measured = measure_protocol_costs(spec.name)
    assert measured.row == CostRow(*spec.table1_row), (
        f"{spec.name}: measured {measured.row} != claimed {spec.table1_row}"
    )


def test_reference_row_resolution():
    from repro.harness.table1 import reference_row

    assert reference_row("PrN") == TABLE1["PrN"]
    assert reference_row("PC") == CostRow(11, 1, 5, 1, 15, 15)
    assert reference_row("LGL") == CostRow(0, 0, 0, 0, 7, 4)


def test_logless_row_truly_logless():
    """LGL's claimed row is the headline: zero log writes."""
    row = measure_protocol_costs("LGL").row
    assert (row.sync_total, row.async_total) == (0, 0)
    assert (row.sync_critical, row.async_critical) == (0, 0)


def test_render_table_measured_marks_agreement():
    text = run_table1(measured=True)
    # Every bracketed measured value equals the preceding paper value.
    assert "(5, 1) [(5, 1)]" in text
    assert "(3, 1) [(3, 1)]" in text
