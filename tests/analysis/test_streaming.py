"""Streaming-statistics accumulator: exactness, sketch bounds, merging."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.analysis.metrics import LatencyStats, percentile
from repro.analysis.streaming import (
    EXACT_THRESHOLD,
    SKETCH_SIZE,
    QuantileSketch,
    StreamingStats,
    _iter_sketch,
    _priority,
    merge_all,
)


def draws(n: int, seed: int = 42) -> list[float]:
    rng = random.Random(seed)
    return [rng.expovariate(1.0 / 0.02) for _ in range(n)]


# -- exact mode ---------------------------------------------------------------


def test_exact_mode_matches_statistics_module():
    values = draws(500)
    stats = StreamingStats()
    for value in values:
        stats.observe(value)
    assert stats.mode == "exact"
    assert stats.count == 500
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)
    assert stats.mean == pytest.approx(statistics.fmean(values), rel=1e-12)
    assert stats.variance == pytest.approx(statistics.pvariance(values), rel=1e-9)
    # Raw values are preserved verbatim, in arrival order.
    assert stats.values == values
    assert stats.quantile(50.0) == percentile(values, 50.0)


def test_exact_mode_finalises_byte_identically_to_legacy():
    # The legacy LatencyStats computation: sort, sum the sorted list.
    values = draws(300, seed=7)
    stats = StreamingStats()
    for value in values:
        stats.observe(value)
    final = LatencyStats.from_streaming(stats)
    ordered = sorted(values)
    assert final.mode == "exact"
    assert final.mean == sum(ordered) / len(ordered)  # bit-for-bit
    assert final.p99 == percentile(ordered, 99.0)


def test_empty_stream_raises():
    stats = StreamingStats()
    for prop in ("minimum", "maximum", "mean", "variance"):
        with pytest.raises(ValueError):
            getattr(stats, prop)
    with pytest.raises(ValueError):
        stats.quantile(50.0)


# -- sketch mode --------------------------------------------------------------


def test_promotion_crosses_threshold_and_drops_raw_values():
    stats = StreamingStats(seed=1, label="t", exact_threshold=64, sketch_size=512)
    for value in draws(64):
        stats.observe(value)
    assert stats.mode == "exact"
    stats.observe(1.0)
    assert stats.mode == "sketch"
    with pytest.raises(RuntimeError):
        stats.values


def test_promoted_sketch_equals_sketch_from_start():
    values = draws(200, seed=3)
    promoted = StreamingStats(seed=9, label="s", exact_threshold=100, sketch_size=64)
    direct = QuantileSketch(seed=9, label="s", k=64)
    for value in values:
        promoted.observe(value)
        direct.add(value)
    assert promoted.mode == "sketch"
    assert sorted(_iter_sketch(promoted._sketch)) == sorted(_iter_sketch(direct))


def test_sketch_quantiles_within_rank_error_bound():
    # Uniform k-sample: rank error ~1/sqrt(k).  With k=1024 over an
    # exponential stream, allow 5 standard errors (~0.16 rank).
    n, k = 50_000, 1024
    values = draws(n, seed=11)
    stats = StreamingStats(seed=5, label="q", exact_threshold=0, sketch_size=k)
    for value in values:
        stats.observe(value)
    ordered = sorted(values)
    for pct in (50.0, 95.0, 99.0):
        estimate = stats.quantile(pct)
        # Convert the estimate back to its true rank in the stream.
        import bisect

        rank = bisect.bisect_left(ordered, estimate) / n
        assert abs(rank - pct / 100.0) < 5.0 / (k ** 0.5), (
            f"p{pct}: estimated rank {rank:.4f}"
        )


def test_sketch_moments_are_exact_regardless_of_mode():
    values = draws(1_000, seed=13)
    sketchy = StreamingStats(exact_threshold=0, sketch_size=8)
    for value in values:
        sketchy.observe(value)
    # min/max/count are exact even with a tiny sketch.
    assert sketchy.count == len(values)
    assert sketchy.minimum == min(values)
    assert sketchy.maximum == max(values)
    assert sketchy.mean == pytest.approx(statistics.fmean(values), rel=1e-12)


# -- merging ------------------------------------------------------------------


def test_merge_of_exact_parts_preserves_values_and_order():
    a = StreamingStats(seed=1, label="a")
    b = StreamingStats(seed=2, label="b")
    for value in (3.0, 1.0):
        a.observe(value)
    for value in (2.0, 5.0):
        b.observe(value)
    total = merge_all([a, b])
    assert total.mode == "exact"
    assert total.values == [3.0, 1.0, 2.0, 5.0]
    assert total.count == 4
    assert total.minimum == 1.0 and total.maximum == 5.0


def test_merge_order_determinism_and_sketch_associativity():
    parts = []
    for group in range(4):
        stats = StreamingStats(seed=100 + group, label=f"g{group}",
                               exact_threshold=0, sketch_size=256)
        for value in draws(500, seed=group):
            stats.observe(value)
        parts.append(stats)
    flat = merge_all(parts)
    # ((g0+g1) + (g2+g3)) — same group order, different tree shape.
    left = merge_all(parts[:2])
    right = merge_all(parts[2:])
    nested = merge_all([left, right])
    assert sorted(_iter_sketch(flat._sketch)) == sorted(_iter_sketch(nested._sketch))
    assert flat.count == nested.count == 2000
    assert flat.minimum == nested.minimum
    assert flat.maximum == nested.maximum


def test_merge_promotes_when_combined_count_crosses_threshold():
    a = StreamingStats(seed=1, label="a", exact_threshold=10, sketch_size=32)
    b = StreamingStats(seed=2, label="b", exact_threshold=10, sketch_size=32)
    for value in draws(6, seed=1):
        a.observe(value)
    for value in draws(6, seed=2):
        b.observe(value)
    assert a.mode == b.mode == "exact"
    a.merge(b)
    assert a.mode == "sketch"
    assert a.count == 12


def test_merged_promotion_attributes_priorities_to_origin_streams():
    # Promote a merged pair and compare against sampling each origin
    # stream from scratch: identical kept (priority, value) sets.
    xs, ys = draws(8, seed=21), draws(8, seed=22)
    a = StreamingStats(seed=1, label="a", exact_threshold=10, sketch_size=4)
    b = StreamingStats(seed=2, label="b", exact_threshold=10, sketch_size=4)
    for value in xs:
        a.observe(value)
    for value in ys:
        b.observe(value)
    a.merge(b)  # 16 > 10: promotes
    reference = QuantileSketch(seed=1, label="a", k=4)
    for value in xs:
        reference.add(value)
    other = QuantileSketch(seed=2, label="b", k=4)
    for value in ys:
        other.add(value)
    reference.merge(other)
    assert sorted(_iter_sketch(a._sketch)) == sorted(_iter_sketch(reference))


def test_observe_after_merge_is_forbidden():
    a, b = StreamingStats(), StreamingStats()
    b.observe(1.0)
    a.merge(b)
    with pytest.raises(RuntimeError, match="observe after merge"):
        a.observe(2.0)


def test_merge_all_requires_parts():
    with pytest.raises(ValueError):
        merge_all([])


# -- plumbing -----------------------------------------------------------------


def test_priorities_are_stable_and_stream_scoped():
    assert _priority(1, "a", 0) == _priority(1, "a", 0)
    assert _priority(1, "a", 0) != _priority(1, "a", 1)
    assert _priority(1, "a", 0) != _priority(2, "a", 0)
    assert _priority(1, "a", 0) != _priority(1, "b", 0)


def test_defaults_are_documented_values():
    assert EXACT_THRESHOLD == 65536
    assert SKETCH_SIZE == 4096
