"""Unit tests for wait-for-graph deadlock detection."""

import pytest

from repro.locks import LockManager, WaitForGraph, find_deadlock_cycle
from repro.sim import Simulator


def test_no_cycle_in_empty_graph():
    assert WaitForGraph().find_cycle() is None


def test_no_cycle_in_chain():
    assert find_deadlock_cycle([(1, 2), (2, 3), (3, 4)]) is None


def test_two_cycle_detected():
    cycle = find_deadlock_cycle([(1, 2), (2, 1)])
    assert cycle is not None
    assert set(cycle) == {1, 2}


def test_three_cycle_detected():
    cycle = find_deadlock_cycle([(1, 2), (2, 3), (3, 1)])
    assert set(cycle) == {1, 2, 3}


def test_cycle_found_in_larger_graph():
    edges = [(1, 2), (2, 3), (3, 4), (4, 2), (5, 1)]
    cycle = find_deadlock_cycle(edges)
    assert set(cycle) == {2, 3, 4}


def test_self_edge_rejected():
    with pytest.raises(ValueError):
        WaitForGraph([(1, 1)])


def test_remove_transaction_breaks_cycle():
    g = WaitForGraph([(1, 2), (2, 1)])
    assert g.find_cycle() is not None
    g.remove_transaction(1)
    assert g.find_cycle() is None
    assert 1 not in g.nodes


def test_successors_and_nodes():
    g = WaitForGraph([(1, 2), (1, 3)])
    assert g.successors(1) == frozenset({2, 3})
    assert g.nodes == frozenset({1, 2, 3})


def test_deterministic_cycle_report():
    edges = [(1, 2), (2, 3), (3, 1), (4, 5), (5, 4)]
    assert find_deadlock_cycle(edges) == find_deadlock_cycle(edges)


def test_live_deadlock_detected_from_lock_manager():
    """Two transactions acquiring a/b in opposite order deadlock; the
    wait-for graph built from the lock manager exposes the cycle."""
    sim = Simulator()
    mgr = LockManager(sim)

    def t1(sim):
        yield from mgr.acquire(1, "a")
        yield sim.timeout(0.1)
        yield from mgr.acquire(1, "b")

    def t2(sim):
        yield from mgr.acquire(2, "b")
        yield sim.timeout(0.1)
        yield from mgr.acquire(2, "a")

    sim.process(t1(sim))
    sim.process(t2(sim))
    sim.run(until=1.0)
    cycle = find_deadlock_cycle(mgr.wait_edges())
    assert cycle is not None
    assert set(cycle) == {1, 2}
