"""Unit tests for the 2PL lock manager."""

import pytest

from repro.locks import LockManager, LockMode, LockTimeout
from repro.sim import Simulator, TraceLog


def make_mgr():
    sim = Simulator()
    trace = TraceLog(sim)
    return sim, LockManager(sim, trace=trace), trace


def test_exclusive_lock_granted_when_free():
    sim, mgr, _ = make_mgr()

    def proc(sim):
        yield from mgr.acquire(1, "dir", LockMode.EXCLUSIVE)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0.0
    assert mgr.holds(1, "dir", LockMode.EXCLUSIVE)


def test_exclusive_blocks_second_txn():
    sim, mgr, _ = make_mgr()
    order = []

    def first(sim):
        yield from mgr.acquire(1, "dir")
        order.append(("t1", sim.now))
        yield sim.timeout(2.0)
        mgr.release(1, "dir")

    def second(sim):
        yield sim.timeout(0.1)
        yield from mgr.acquire(2, "dir")
        order.append(("t2", sim.now))
        mgr.release(2, "dir")

    sim.process(first(sim))
    sim.process(second(sim))
    sim.run()
    assert order == [("t1", 0.0), ("t2", 2.0)]


def test_shared_locks_coexist():
    sim, mgr, _ = make_mgr()
    order = []

    def reader(sim, txn):
        yield from mgr.acquire(txn, "dir", LockMode.SHARED)
        order.append((txn, sim.now))
        yield sim.timeout(1.0)
        mgr.release(txn, "dir")

    sim.process(reader(sim, 1))
    sim.process(reader(sim, 2))
    sim.run()
    assert order == [(1, 0.0), (2, 0.0)]


def test_exclusive_waits_for_all_shared():
    sim, mgr, _ = make_mgr()
    order = []

    def reader(sim, txn, hold):
        yield from mgr.acquire(txn, "dir", LockMode.SHARED)
        yield sim.timeout(hold)
        mgr.release(txn, "dir")

    def writer(sim):
        yield sim.timeout(0.1)
        yield from mgr.acquire(9, "dir", LockMode.EXCLUSIVE)
        order.append(sim.now)
        mgr.release(9, "dir")

    sim.process(reader(sim, 1, 1.0))
    sim.process(reader(sim, 2, 2.0))
    sim.process(writer(sim))
    sim.run()
    assert order == [2.0]


def test_fifo_no_overtaking_shared_behind_exclusive():
    """A shared request queued behind an exclusive one must not overtake
    it (prevents writer starvation)."""
    sim, mgr, _ = make_mgr()
    order = []

    def holder(sim):
        yield from mgr.acquire(1, "dir", LockMode.SHARED)
        yield sim.timeout(1.0)
        mgr.release(1, "dir")

    def writer(sim):
        yield sim.timeout(0.1)
        yield from mgr.acquire(2, "dir", LockMode.EXCLUSIVE)
        order.append(("writer", sim.now))
        yield sim.timeout(1.0)
        mgr.release(2, "dir")

    def late_reader(sim):
        yield sim.timeout(0.2)
        yield from mgr.acquire(3, "dir", LockMode.SHARED)
        order.append(("reader", sim.now))
        mgr.release(3, "dir")

    sim.process(holder(sim))
    sim.process(writer(sim))
    sim.process(late_reader(sim))
    sim.run()
    assert order == [("writer", 1.0), ("reader", 2.0)]


def test_reacquire_held_lock_is_noop():
    sim, mgr, _ = make_mgr()

    def proc(sim):
        yield from mgr.acquire(1, "dir", LockMode.EXCLUSIVE)
        yield from mgr.acquire(1, "dir", LockMode.EXCLUSIVE)
        yield from mgr.acquire(1, "dir", LockMode.SHARED)  # X covers S
        return True

    p = sim.process(proc(sim))
    sim.run()
    assert p.value is True


def test_upgrade_shared_to_exclusive_sole_holder():
    sim, mgr, _ = make_mgr()

    def proc(sim):
        yield from mgr.acquire(1, "dir", LockMode.SHARED)
        yield from mgr.acquire(1, "dir", LockMode.EXCLUSIVE)
        return mgr.holds(1, "dir", LockMode.EXCLUSIVE)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value is True


def test_upgrade_waits_for_other_shared_holder():
    sim, mgr, _ = make_mgr()
    order = []

    def other(sim):
        yield from mgr.acquire(2, "dir", LockMode.SHARED)
        yield sim.timeout(1.0)
        mgr.release(2, "dir")

    def upgrader(sim):
        yield from mgr.acquire(1, "dir", LockMode.SHARED)
        yield sim.timeout(0.1)
        yield from mgr.acquire(1, "dir", LockMode.EXCLUSIVE)
        order.append(sim.now)

    sim.process(other(sim))
    sim.process(upgrader(sim))
    sim.run()
    assert order == [1.0]
    assert mgr.holds(1, "dir", LockMode.EXCLUSIVE)


def test_timeout_raises_and_withdraws():
    sim, mgr, trace = make_mgr()
    outcome = []

    def holder(sim):
        yield from mgr.acquire(1, "dir")
        yield sim.timeout(10.0)
        mgr.release(1, "dir")

    def impatient(sim):
        try:
            yield from mgr.acquire(2, "dir", timeout=0.5)
        except LockTimeout as exc:
            outcome.append((exc.txn_id, exc.obj_id, sim.now))

    sim.process(holder(sim))
    sim.process(impatient(sim))
    sim.run()
    assert outcome == [(2, "dir", 0.5)]
    assert mgr.queue_length("dir") == 0
    assert trace.count("lock_timeout") == 1


def test_timeout_withdrawal_lets_next_waiter_through():
    sim, mgr, _ = make_mgr()
    order = []

    def holder(sim):
        yield from mgr.acquire(1, "dir")
        yield sim.timeout(1.0)
        mgr.release(1, "dir")

    def impatient(sim):
        yield sim.timeout(0.1)
        try:
            yield from mgr.acquire(2, "dir", timeout=0.2)
        except LockTimeout:
            order.append("timeout")

    def patient(sim):
        yield sim.timeout(0.2)
        yield from mgr.acquire(3, "dir")
        order.append(("granted", sim.now))
        mgr.release(3, "dir")

    sim.process(holder(sim))
    sim.process(impatient(sim))
    sim.process(patient(sim))
    sim.run()
    assert order == ["timeout", ("granted", 1.0)]


def test_release_unheld_lock_raises():
    sim, mgr, _ = make_mgr()
    with pytest.raises(KeyError):
        mgr.release(1, "dir")


def test_release_all_releases_everything():
    sim, mgr, _ = make_mgr()

    def proc(sim):
        yield from mgr.acquire(1, "a")
        yield from mgr.acquire(1, "b")
        yield from mgr.acquire(1, "c", LockMode.SHARED)

    sim.process(proc(sim))
    sim.run()
    assert sorted(mgr.locks_of(1)) == ["a", "b", "c"]
    assert mgr.release_all(1) == 3
    assert mgr.locks_of(1) == []


def test_release_all_withdraws_queued_requests():
    sim, mgr, _ = make_mgr()

    def holder(sim):
        yield from mgr.acquire(1, "dir")
        yield sim.timeout(1.0)
        mgr.release(1, "dir")

    def waiter(sim):
        yield sim.timeout(0.1)
        yield from mgr.acquire(2, "dir")

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run(until=0.5)
    assert mgr.queue_length("dir") == 1
    mgr.release_all(2)
    assert mgr.queue_length("dir") == 0


def test_try_acquire_non_blocking():
    sim, mgr, _ = make_mgr()
    assert mgr.try_acquire(1, "dir", LockMode.EXCLUSIVE)
    assert not mgr.try_acquire(2, "dir", LockMode.EXCLUSIVE)
    assert mgr.try_acquire(1, "dir", LockMode.EXCLUSIVE)  # re-entrant


def test_try_acquire_respects_queue():
    sim, mgr, _ = make_mgr()

    def holder(sim):
        yield from mgr.acquire(1, "dir", LockMode.SHARED)
        yield sim.timeout(1.0)
        mgr.release(1, "dir")

    def waiter(sim):
        yield sim.timeout(0.1)
        yield from mgr.acquire(2, "dir", LockMode.EXCLUSIVE)
        mgr.release(2, "dir")

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run(until=0.5)
    # A shared try_acquire must not jump the queued exclusive waiter.
    assert not mgr.try_acquire(3, "dir", LockMode.SHARED)
    sim.run()


def test_wait_edges_reflect_blocking():
    sim, mgr, _ = make_mgr()

    def holder(sim):
        yield from mgr.acquire(1, "dir")
        yield sim.timeout(1.0)
        mgr.release(1, "dir")

    def waiter(sim):
        yield sim.timeout(0.1)
        yield from mgr.acquire(2, "dir")
        mgr.release(2, "dir")

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run(until=0.5)
    assert mgr.wait_edges() == [(2, 1)]
    sim.run()
    assert mgr.wait_edges() == []


def test_lock_table_entry_cleaned_up():
    sim, mgr, _ = make_mgr()

    def proc(sim):
        yield from mgr.acquire(1, "dir")
        mgr.release(1, "dir")

    sim.process(proc(sim))
    sim.run()
    assert mgr._table == {}


def test_holders_reports_modes():
    sim, mgr, _ = make_mgr()

    def proc(sim):
        yield from mgr.acquire(1, "dir", LockMode.SHARED)
        yield from mgr.acquire(2, "dir", LockMode.SHARED)

    sim.process(proc(sim))
    sim.run()
    assert mgr.holders("dir") == {1: LockMode.SHARED, 2: LockMode.SHARED}
    assert mgr.holders("nothing") == {}
