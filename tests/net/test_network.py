"""Unit tests for the network substrate: delivery, partitions, faults."""

import pytest

from repro.config import NetworkParams
from repro.net import Message, Network, ReceiveTimeout
from repro.sim import Simulator, TraceLog


def make_net(latency=100e-6, **kwargs):
    sim = Simulator()
    trace = TraceLog(sim)
    net = Network(sim, NetworkParams(latency=latency, **kwargs), trace=trace)
    return sim, net, trace


def test_message_delivered_with_latency():
    sim, net, _ = make_net(latency=0.001)
    a, b = net.attach("a"), net.attach("b")
    got = []

    def receiver(sim):
        msg = yield b.receive()
        got.append((sim.now, msg.kind))

    sim.process(receiver(sim))
    a.send_to("b", "PING")
    sim.run()
    assert got == [(0.001, "PING")]


def test_message_reply_routes_back():
    sim, net, _ = make_net(latency=0.001)
    a, b = net.attach("a"), net.attach("b")
    got = []

    def server(sim):
        msg = yield b.receive()
        b.send(msg.reply("PONG", echoed=msg.payload["n"]))

    def client(sim):
        a.send_to("b", "PING", n=7)
        msg = yield a.receive()
        got.append((sim.now, msg.kind, msg.payload["echoed"]))

    sim.process(server(sim))
    sim.process(client(sim))
    sim.run()
    assert got == [(pytest.approx(0.002), "PONG", 7)]


def test_send_as_other_node_rejected():
    sim, net, _ = make_net()
    a = net.attach("a")
    net.attach("b")
    with pytest.raises(ValueError):
        a.send(Message(src="b", dst="a", kind="FAKE"))


def test_send_to_unknown_node_rejected():
    sim, net, _ = make_net()
    a = net.attach("a")
    with pytest.raises(KeyError):
        a.send_to("ghost", "PING")


def test_partition_drops_messages():
    sim, net, trace = make_net()
    a, b = net.attach("a"), net.attach("b")
    net.partition({"a"}, {"b"})
    a.send_to("b", "PING")
    sim.run()
    assert len(b.mailbox) == 0
    assert trace.count("msg_drop", reason="partitioned") == 1


def test_partition_implicit_rest_group():
    sim, net, _ = make_net()
    for n in ("a", "b", "c", "d"):
        net.attach(n)
    net.partition({"a"})
    assert not net.connected("a", "b")
    assert net.connected("c", "d")  # both in the implicit rest group
    assert net.connected("b", "c")


def test_partition_overlapping_groups_rejected():
    sim, net, _ = make_net()
    net.attach("a")
    net.attach("b")
    with pytest.raises(ValueError):
        net.partition({"a", "b"}, {"b"})


def test_heal_partition_restores_delivery():
    sim, net, _ = make_net(latency=0.001)
    a, b = net.attach("a"), net.attach("b")
    net.partition({"a"}, {"b"})
    net.heal_partition()
    got = []

    def receiver(sim):
        msg = yield b.receive()
        got.append(msg.kind)

    sim.process(receiver(sim))
    a.send_to("b", "PING")
    sim.run()
    assert got == ["PING"]


def test_partition_formed_in_flight_severs_message():
    sim, net, trace = make_net(latency=0.010)
    a, b = net.attach("a"), net.attach("b")
    a.send_to("b", "PING")
    # Partition forms at t=5ms, while the message is in flight.
    sim.call_at(0.005, lambda: net.partition({"a"}, {"b"}))
    sim.run()
    assert len(b.mailbox) == 0
    assert trace.count("msg_drop", reason="partitioned") == 1


def test_link_failure_drops_messages_both_ways():
    sim, net, trace = make_net()
    a, b = net.attach("a"), net.attach("b")
    net.fail_link("a", "b")
    a.send_to("b", "PING")
    b.send_to("a", "PONG")
    sim.run()
    assert len(a.mailbox) == 0 and len(b.mailbox) == 0
    assert trace.count("msg_drop") == 2
    net.restore_link("a", "b")
    assert net.connected("a", "b")


def test_unidirectional_link_failure():
    sim, net, _ = make_net(latency=0.001)
    a, b = net.attach("a"), net.attach("b")
    net.fail_link("a", "b", bidirectional=False)
    assert not net.connected("a", "b")
    assert net.connected("b", "a")


def test_detached_receiver_drops_in_flight_message():
    sim, net, trace = make_net(latency=0.010)
    a, b = net.attach("a"), net.attach("b")
    a.send_to("b", "PING")
    sim.call_at(0.005, lambda: net.detach("b"))
    sim.run()
    assert len(b.mailbox) == 0
    assert trace.count("msg_drop", reason="receiver_down") == 1


def test_detached_sender_cannot_transmit():
    sim, net, trace = make_net()
    a, b = net.attach("a"), net.attach("b")
    net.detach("a")
    a.send_to("b", "PING")
    sim.run()
    assert len(b.mailbox) == 0
    assert trace.count("msg_drop", reason="sender_down") == 1


def test_detach_flushes_mailbox():
    sim, net, _ = make_net(latency=0.001)
    a, b = net.attach("a"), net.attach("b")
    a.send_to("b", "PING")
    sim.run()
    assert len(b.mailbox) == 1
    net.detach("b")
    assert len(b.mailbox) == 0


def test_reattach_after_detach():
    sim, net, _ = make_net(latency=0.001)
    a = net.attach("a")
    b = net.attach("b")
    net.detach("b")
    b2 = net.attach("b")
    assert b2 is b and b.attached
    a.send_to("b", "PING")
    sim.run()
    assert len(b.mailbox) == 1


def test_receive_with_predicate():
    sim, net, _ = make_net(latency=0.001)
    a, b = net.attach("a"), net.attach("b")
    got = []

    def receiver(sim):
        msg = yield b.receive(lambda m: m.kind == "WANTED")
        got.append(msg.kind)

    sim.process(receiver(sim))
    a.send_to("b", "NOISE")
    a.send_to("b", "WANTED")
    sim.run()
    assert got == ["WANTED"]


def test_receive_wait_timeout_raises():
    sim, net, _ = make_net()
    net.attach("a")
    b = net.attach("b")
    outcome = []

    def receiver(sim):
        try:
            yield from b.receive_wait(timeout=0.5)
        except ReceiveTimeout:
            outcome.append(("timeout", sim.now))

    sim.process(receiver(sim))
    sim.run()
    assert outcome == [("timeout", 0.5)]


def test_receive_wait_returns_message_before_timeout():
    sim, net, _ = make_net(latency=0.001)
    a, b = net.attach("a"), net.attach("b")
    got = []

    def receiver(sim):
        msg = yield from b.receive_wait(timeout=1.0)
        got.append(msg.kind)

    sim.process(receiver(sim))
    a.send_to("b", "PING")
    sim.run()
    assert got == ["PING"]


def test_receive_wait_abandoned_get_does_not_steal_message():
    sim, net, _ = make_net(latency=1.0)
    a, b = net.attach("a"), net.attach("b")
    got = []

    def impatient(sim):
        try:
            yield from b.receive_wait(timeout=0.1)
        except ReceiveTimeout:
            pass

    def patient(sim):
        yield sim.timeout(0.2)
        msg = yield b.receive()
        got.append(msg.kind)

    sim.process(impatient(sim))
    sim.process(patient(sim))
    a.send_to("b", "LATE")
    sim.run()
    assert got == ["LATE"]


def test_byte_cost_adds_size_dependent_delay():
    sim, net, _ = make_net(latency=0.001, byte_cost=1e-6)
    a, b = net.attach("a"), net.attach("b")
    got = []

    def receiver(sim):
        yield b.receive()
        got.append(sim.now)

    sim.process(receiver(sim))
    a.send(Message(src="a", dst="b", kind="BIG", size=1000.0))
    sim.run()
    assert got == [pytest.approx(0.002)]


def test_jitter_is_deterministic_per_seed():
    def run(seed):
        from repro.sim import RngRegistry

        sim = Simulator()
        net = Network(sim, NetworkParams(latency=0.001, jitter=0.001), rng=RngRegistry(seed))
        a, b = net.attach("a"), net.attach("b")
        times = []

        def receiver(sim):
            yield b.receive()
            times.append(sim.now)

        sim.process(receiver(sim))
        a.send_to("b", "PING")
        sim.run()
        return times[0]

    assert run(1) == run(1)
    assert 0.001 <= run(1) <= 0.002


def test_trace_records_send_and_recv():
    sim, net, trace = make_net()
    a, b = net.attach("a"), net.attach("b")

    def receiver(sim):
        yield b.receive()

    sim.process(receiver(sim))
    a.send_to("b", "PING", txn_id=9)
    sim.run()
    assert trace.count("msg_send", kind="PING") == 1
    assert trace.count("msg_recv", kind="PING") == 1
    assert trace.select("msg_send")[0].get("txn") == 9


def test_nodes_listing():
    sim, net, _ = make_net()
    for n in ("b", "a", "c"):
        net.attach(n)
    assert net.nodes() == ["a", "b", "c"]
