"""The §VI aggregation extension: merging namespace ops into batches."""

import pytest

from repro.core import BatchPlanner
from repro.fs import InodeAllocator, UnsupportedOperation, plan_create
from repro.harness.scenarios import ForcedDistributedPlacement
from tests.protocols.conftest import drain, make_cluster


def make_plans(n, start=100):
    placement = ForcedDistributedPlacement("mds1", "mds2")
    alloc = InodeAllocator(start=start)
    return [plan_create(f"/dir1/b{i}", placement, alloc) for i in range(n)]


def test_merge_combines_updates_per_node():
    planner = BatchPlanner(max_batch=8)
    batch = planner.merge(make_plans(4))
    assert batch.op == "BATCH"
    assert batch.coordinator == "mds1"
    assert len(batch.updates["mds1"]) == 4  # four AddDentry
    assert len(batch.updates["mds2"]) == 4  # four CreateInode
    assert batch.detail["size"] == 4


def test_merge_single_plan_passthrough():
    planner = BatchPlanner()
    plans = make_plans(1)
    assert planner.merge(plans) is plans[0]


def test_merge_empty_rejected():
    with pytest.raises(ValueError):
        BatchPlanner().merge([])


def test_merge_respects_max_batch():
    planner = BatchPlanner(max_batch=2)
    with pytest.raises(UnsupportedOperation):
        planner.merge(make_plans(3))


def test_merge_rejects_mixed_coordinators():
    plans = make_plans(2)
    object.__setattr__(plans[1], "coordinator", "mds2") if False else None
    plans[1].coordinator = "mds2"
    plans[1].updates["mds2"] = plans[1].updates.pop("mds1") + plans[1].updates["mds2"]
    planner = BatchPlanner()
    with pytest.raises(UnsupportedOperation):
        planner.merge(plans)


def test_merge_respects_worker_limit():
    plans = make_plans(2)
    # Move one create's inode to a third server.
    plans[1].updates["mds3"] = plans[1].updates.pop("mds2")
    planner = BatchPlanner(max_workers=1)
    with pytest.raises(UnsupportedOperation):
        planner.merge(plans)
    # Unlimited workers accepts it.
    wide = BatchPlanner(max_workers=None).merge(plans)
    assert set(wide.updates) == {"mds1", "mds2", "mds3"}


def test_partition_groups_greedily():
    planner = BatchPlanner(max_batch=3)
    batches = planner.partition(make_plans(8))
    assert [b.detail.get("size", 1) for b in batches] == [3, 3, 2]


def test_partition_locks_directory_once_per_batch():
    planner = BatchPlanner(max_batch=4)
    batch = planner.merge(make_plans(4))
    locks = batch.locks("mds1")
    # One directory lock plus nothing else on the coordinator.
    assert len(locks) == 1


def test_batched_create_executes_atomically():
    """A merged batch commits all members in one transaction."""
    cluster, client = make_cluster("1PC")
    planner = BatchPlanner(max_batch=16)
    plans = [client.plan_create(f"/dir1/b{i}") for i in range(8)]
    batch = planner.merge(plans)
    done = cluster.sim.process(client.run(batch), name="batch")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    assert len(cluster.listdir("/dir1")) == 8
    # One transaction only.
    assert len(cluster.outcomes) == 1


def test_batching_reduces_log_forces():
    """The point of §VI: one batch of N creates needs far fewer forced
    writes than N separate transactions."""

    def forced_writes(batched):
        cluster, client = make_cluster("1PC")
        plans = [client.plan_create(f"/dir1/b{i}") for i in range(8)]
        if batched:
            plans = [BatchPlanner(max_batch=16).merge(plans)]
        for plan in plans:
            done = cluster.sim.process(client.run(plan), name="op")
            cluster.sim.run(until=done)
        drain(cluster)
        return cluster.trace.count("log_append", sync=True)

    assert forced_writes(batched=True) < forced_writes(batched=False) / 2


def test_batch_abort_aborts_all_members():
    cluster, client = make_cluster("1PC")
    cluster.servers["mds2"].fail_next_vote = True
    plans = [client.plan_create(f"/dir1/b{i}") for i in range(4)]
    batch = BatchPlanner(max_batch=8).merge(plans)
    done = cluster.sim.process(client.run(batch), name="batch")
    cluster.sim.run(until=done)
    assert done.value["committed"] is False
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.listdir("/dir1") == {}


def test_invalid_max_batch_rejected():
    with pytest.raises(ValueError):
        BatchPlanner(max_batch=0)
