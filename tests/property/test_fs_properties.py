"""Property-based tests for the metadata store, placement and planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import (
    AddDentry,
    HashPlacement,
    InodeAllocator,
    MetadataStore,
    ObjectId,
    RemoveDentry,
    RoundRobinPlacement,
    UpdateError,
    check_invariants,
    plan_create,
    plan_delete,
)

pytestmark = pytest.mark.slow

names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
nodes = st.lists(st.sampled_from(["mds1", "mds2", "mds3", "mds4"]), min_size=1, unique=True)


@given(nodes, st.lists(names, min_size=1, max_size=20))
def test_placement_always_maps_to_known_node(node_list, keys):
    for placement in (HashPlacement(node_list), RoundRobinPlacement(node_list)):
        for key in keys:
            assert placement.place(ObjectId.directory("/" + key)) in node_list
            assert placement.place(ObjectId.inode(abs(hash(key)) % 10_000)) in node_list


@given(nodes, names)
def test_placement_is_deterministic(node_list, key)  :
    p = HashPlacement(node_list)
    obj = ObjectId.directory("/" + key)
    assert p.place(obj) == p.place(obj)


# A random interleaving of store operations, then crash; stable and
# cache must agree afterwards, and invariant checking must hold for
# fully-hardened histories.
ops = st.lists(
    st.tuples(
        st.sampled_from(["apply_add", "apply_remove", "commit", "harden", "abort", "crash"]),
        st.integers(min_value=1, max_value=5),  # txn id
        names,
    ),
    max_size=40,
)


@given(ops)
@settings(max_examples=120)
def test_store_cache_equals_stable_after_crash(script):
    store = MetadataStore("mds1")
    store.mkdir("/d")
    ino = 1
    for op, txn, name in script:
        try:
            if op == "apply_add":
                store.apply(txn, AddDentry("/d", name, ino))
                ino += 1
            elif op == "apply_remove":
                store.apply(txn, RemoveDentry("/d", name))
            elif op == "commit":
                store.commit(txn)
            elif op == "harden":
                store.harden(txn)
            elif op == "abort":
                store.abort(txn)
            elif op == "crash":
                store.crash()
        except UpdateError:
            store.abort(txn)
    store.crash()
    # After a crash the cache is exactly the stable image.
    assert store.listdir("/d") == store.stable_directories["/d"]
    assert store.in_flight() == [] and store.unhardened() == []


@given(ops)
@settings(max_examples=120)
def test_store_overlay_never_leaks_without_commit(script):
    store = MetadataStore("mds1")
    store.mkdir("/d")
    ino = 1
    committed_names: set[str] = set()
    committed_txns: set[int] = set()
    staged: dict[int, set[str]] = {}
    for op, txn, name in script:
        try:
            if op == "apply_add":
                store.apply(txn, AddDentry("/d", name, ino))
                staged.setdefault(txn, set()).add(name)
                ino += 1
            elif op == "commit":
                store.commit(txn)
                # The store refuses to re-commit an id that is already
                # committed (idempotent replay guard); mirror that.
                if txn not in committed_txns:
                    merged = staged.pop(txn, set())
                    if merged:
                        committed_names |= merged
                        committed_txns.add(txn)
                else:
                    staged.pop(txn, None)
            elif op == "abort":
                store.abort(txn)
                staged.pop(txn, None)
            elif op == "crash":
                store.crash()
                staged.clear()
                # cache reverts to stable; recompute what is visible
                committed_names = set(store.listdir("/d"))
                committed_txns = {t for t in committed_txns if store.has_applied(t)}
            elif op == "harden":
                store.harden(txn)
        except UpdateError:
            store.abort(txn)
            staged.pop(txn, None)
    assert set(store.listdir("/d")) == committed_names


@given(st.lists(names, min_size=1, max_size=15, unique=True), st.integers(0, 3))
@settings(max_examples=60)
def test_create_delete_roundtrip_preserves_invariants(file_names, n_nodes_idx):
    node_list = ["mds1", "mds2", "mds3", "mds4"][: n_nodes_idx + 1]
    placement = HashPlacement(node_list)
    stores = {n: MetadataStore(n) for n in node_list}
    dir_owner = placement.place(ObjectId.directory("/d"))
    stores[dir_owner].mkdir("/d")
    alloc = InodeAllocator()
    txn = 0
    created = {}
    for name in file_names:
        txn += 1
        plan = plan_create(f"/d/{name}", placement, alloc)
        for node, updates in plan.updates.items():
            for update in updates:
                stores[node].apply(txn, update)
            stores[node].commit_durable(txn)
        created[name] = plan.detail["ino"]
    assert check_invariants(stores.values()) == []
    # Delete half of them.
    for name in file_names[::2]:
        txn += 1
        plan = plan_delete(f"/d/{name}", created[name], placement)
        for node, updates in plan.updates.items():
            for update in updates:
                stores[node].apply(txn, update)
            stores[node].commit_durable(txn)
    assert check_invariants(stores.values()) == []
    remaining = set(file_names) - set(file_names[::2])
    assert set(stores[dir_owner].listdir("/d")) == remaining


@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
def test_deadlock_cycle_report_is_a_real_cycle(edges):
    from repro.locks import WaitForGraph

    clean = [(a, b) for a, b in edges if a != b]
    graph = WaitForGraph(clean)
    cycle = graph.find_cycle()
    if cycle is None:
        return
    assert len(cycle) >= 2
    for i, node in enumerate(cycle):
        succ = cycle[(i + 1) % len(cycle)]
        assert succ in graph.successors(node)


@given(st.lists(st.integers(0, 9), min_size=2, max_size=10, unique=True))
def test_dag_has_no_deadlock(order):
    """Edges only from later to earlier topological position: acyclic."""
    from repro.locks import find_deadlock_cycle

    edges = [(order[i], order[j]) for i in range(len(order)) for j in range(i)]
    assert find_deadlock_cycle(edges) is None
