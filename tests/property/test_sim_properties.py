"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngRegistry, Simulator

import pytest

pytestmark = pytest.mark.slow

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@given(delays)
def test_timeouts_fire_in_nondecreasing_time_order(ds):
    sim = Simulator()
    fired = []

    def proc(sim, d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in ds:
        sim.process(proc(sim, d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)
    assert sim.now == max(ds)


@given(delays)
def test_equal_delays_fire_in_creation_order(ds):
    sim = Simulator()
    order = []

    def proc(sim, idx, d):
        yield sim.timeout(d)
        order.append(idx)

    for idx, d in enumerate(ds):
        sim.process(proc(sim, idx, d))
    sim.run()
    # Stable by (time, creation order).
    expected = [i for _d, i in sorted(zip(ds, range(len(ds))), key=lambda p: (p[0], p[1]))]
    assert order == expected


@given(delays, st.integers(min_value=0, max_value=2**32 - 1))
def test_simulation_is_deterministic(ds, seed):
    def run():
        sim = Simulator()
        rng = RngRegistry(seed)
        trace = []

        def proc(sim, i, d):
            yield sim.timeout(d + rng.uniform(f"jitter{i}", 0, 1e-3))
            trace.append((i, sim.now))

        for i, d in enumerate(ds):
            sim.process(proc(sim, i, d))
        sim.run()
        return trace

    assert run() == run()


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible(seed, name):
    a = RngRegistry(seed).stream(name).random()
    b = RngRegistry(seed).stream(name).random()
    assert a == b


@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(st.text(min_size=1, max_size=8), min_size=2, max_size=6, unique=True),
)
def test_rng_stream_isolation(seed, names):
    """Drawing from other streams never perturbs a given stream."""
    solo = RngRegistry(seed).stream(names[0]).random()
    reg = RngRegistry(seed)
    for other in names[1:]:
        reg.stream(other).random()
    assert reg.stream(names[0]).random() == solo


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(hold_times):
    from repro.sim import Resource

    sim = Simulator()
    res = Resource(sim, capacity=2)
    peak = {"v": 0}

    def proc(sim, hold):
        with res.request() as req:
            yield req
            peak["v"] = max(peak["v"], res.in_use)
            assert res.in_use <= 2
            yield sim.timeout(hold)

    for h in hold_times:
        sim.process(proc(sim, h))
    sim.run()
    assert peak["v"] <= 2
    assert res.in_use == 0 and res.queue_length == 0
