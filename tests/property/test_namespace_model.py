"""Model-based testing of the full namespace stack.

A random sequence of MKDIR / CREATE / DELETE / RMDIR / RENAME
operations is executed twice: once against the real cluster (placement,
locks, WAL, commit protocol — the works) and once against a trivial
in-memory dictionary model.  Outcomes (success or failure *and* the
reason class) and the final tree must agree exactly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.scenarios import distributed_create_cluster

import pytest

pytestmark = pytest.mark.slow


class TreeModel:
    """The obviously-correct model: a dict of directory -> name -> kind."""

    def __init__(self):
        self.dirs: dict[str, dict[str, str]] = {"/dir1": {}}

    @staticmethod
    def split(path):
        head, _, tail = path.rstrip("/").rpartition("/")
        return head or "/", tail

    def full(self, parent, name):
        return f"{parent.rstrip('/')}/{name}"

    def mkdir(self, path):
        parent, name = self.split(path)
        if parent not in self.dirs:
            return "noparent"
        if name in self.dirs[parent]:
            return "exists"
        self.dirs[parent][name] = "dir"
        self.dirs[path] = {}
        return "ok"

    def create(self, path):
        parent, name = self.split(path)
        if parent not in self.dirs:
            return "noparent"
        if name in self.dirs[parent]:
            return "exists"
        self.dirs[parent][name] = "file"
        return "ok"

    def delete(self, path):
        parent, name = self.split(path)
        if parent not in self.dirs or self.dirs[parent].get(name) != "file":
            return "missing"
        del self.dirs[parent][name]
        return "ok"

    def rmdir(self, path):
        parent, name = self.split(path)
        if parent not in self.dirs or self.dirs[parent].get(name) != "dir":
            return "missing"
        if self.dirs.get(path):
            return "notempty"
        del self.dirs[parent][name]
        self.dirs.pop(path, None)
        return "ok"

    def rename(self, src, dst):
        if src == dst:
            return "skip"  # POSIX no-op; the planner rejects it upfront
        sp, sn = self.split(src)
        dp, dn = self.split(dst)
        if sp not in self.dirs or sn not in self.dirs.get(sp, {}):
            return "missing"
        if self.dirs[sp][sn] == "dir":
            return "skip"  # directory renames are out of scope
        if dp not in self.dirs:
            return "noparent"
        if self.dirs.get(dp, {}).get(dn) == "dir":
            return "skip"  # replacing a directory is out of scope
        kind = self.dirs[sp].pop(sn)
        self.dirs[dp][dn] = kind
        return "ok"


# Operation scripts over a tiny name alphabet rooted at /dir1.
names = st.sampled_from(["a", "b", "c"])
ops = st.lists(
    st.tuples(st.sampled_from(["mkdir", "create", "delete", "rmdir", "rename"]), names, names),
    min_size=1,
    max_size=14,
)


def apply_real(cluster, client, op, path, dst=None):
    """Run one op through the cluster; returns an outcome class."""

    def driver(sim):
        try:
            if op == "mkdir":
                result = yield from client.mkdir(path)
            elif op == "create":
                result = yield from client.create(path)
            elif op == "delete":
                result = yield from client.delete(path)
            elif op == "rmdir":
                result = yield from client.rmdir(path)
            else:
                result = yield from client.rename(path, dst)
        except FileNotFoundError:
            return "missing"
        return "ok" if result["committed"] else "aborted"

    p = cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=p)
    return p.value


@given(ops)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_cluster_agrees_with_tree_model(script):
    cluster, client = distributed_create_cluster("1PC", trace=False)
    model = TreeModel()

    for op, n1, n2 in script:
        # Choose paths one level under /dir1 (plus nested one level).
        path = f"/dir1/{n1}"
        nested = f"/dir1/{n1}/{n2}"
        if op == "rename":
            expected = model.rename(path, f"/dir1/{n2}")
            if expected == "skip":
                continue
            real = apply_real(cluster, client, "rename", path, f"/dir1/{n2}")
            if expected == "missing":
                assert real == "missing"
            elif expected == "ok":
                assert real == "ok"
            else:
                assert real in ("aborted", "missing")
            continue
        target = nested if op in ("create", "delete") and model.dirs.get(path) is not None and model.dirs.get("/dir1", {}).get(n1) == "dir" else path
        if op == "mkdir":
            expected = model.mkdir(target)
        elif op == "create":
            expected = model.create(target)
        elif op == "delete":
            expected = model.delete(target)
        else:
            expected = model.rmdir(target)
        real = apply_real(cluster, client, op, target)
        if expected == "ok":
            assert real == "ok", (op, target, real)
        elif expected == "missing":
            assert real in ("missing", "aborted"), (op, target, real)
        else:  # exists / notempty / noparent -> abort at the cluster
            assert real == "aborted", (op, target, real, expected)

    # Final tree comparison.
    cluster.sim.run(until=cluster.sim.now + 60.0)
    assert cluster.check_invariants() == []
    for dir_path, entries in model.dirs.items():
        real_entries = cluster.listdir(dir_path)
        assert set(real_entries) == set(entries), (dir_path, real_entries, entries)
