"""Property-based tests for the WAL and the network."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkParams, StorageParams
from repro.net import Network
from repro.sim import Simulator
from repro.storage import Disk, LogRecord, RecordKind, WriteAheadLog

import pytest

pytestmark = pytest.mark.slow

# A script of WAL actions: (op, size). "crash" loses buffered state.
wal_ops = st.lists(
    st.tuples(
        st.sampled_from(["force", "lazy", "crash_restart", "run_a_bit"]),
        st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


@given(wal_ops)
@settings(max_examples=60, deadline=None)
def test_wal_durable_records_preserve_append_order(script):
    """Durable records always form an order-preserving subsequence of
    the appended records (log order is never violated, whatever mix of
    forced, lazy and crash events happens)."""
    sim = Simulator()
    disk = Disk(sim, StorageParams(bandwidth=10_000.0))
    wal = WriteAheadLog(sim, disk, owner="mds1")
    appended = []
    seq = 0

    def force_one(record):
        try:
            yield from wal.force(record)
        except Exception:
            pass

    for op, size in script:
        seq += 1
        if op == "force":
            record = LogRecord(RecordKind.UPDATES, txn_id=seq, size=size)
            appended.append(record)
            sim.process(force_one(record))
            sim.run(until=sim.now + 0.001)
        elif op == "lazy":
            record = LogRecord(RecordKind.ENDED, txn_id=seq, size=size)
            appended.append(record)
            wal.append_lazy(record)
        elif op == "crash_restart":
            wal.crash()
            wal.restart()
        else:
            sim.run(until=sim.now + 0.05)
    sim.run(until=sim.now + 60.0)

    durable = list(wal.durable_records)
    # Subsequence check against append order (by identity).
    it = iter(appended)
    for record in durable:
        for candidate in it:
            if candidate is record:
                break
        else:
            raise AssertionError("durable record out of append order")
    # LSNs are strictly increasing.
    lsns = [r.lsn for r in durable]
    assert lsns == sorted(lsns)
    assert len(set(lsns)) == len(lsns)


@given(wal_ops)
@settings(max_examples=60, deadline=None)
def test_wal_forced_records_without_crash_are_durable(script):
    """With no crashes, every append eventually becomes durable."""
    sim = Simulator()
    disk = Disk(sim, StorageParams(bandwidth=10_000.0))
    wal = WriteAheadLog(sim, disk, owner="mds1")
    expected = 0
    for op, size in script:
        if op == "force":
            expected += 1
            sim.process(wal.force(LogRecord(RecordKind.UPDATES, txn_id=expected, size=size)))
        elif op == "lazy":
            expected += 1
            wal.append_lazy(LogRecord(RecordKind.ENDED, txn_id=expected, size=size))
        # crash_restart excluded from this property
        elif op == "crash_restart":
            continue
        else:
            sim.run(until=sim.now + 0.01)
    sim.run(until=sim.now + 120.0)
    assert len(wal.durable_records) == expected


messages = st.lists(st.sampled_from(["A", "B", "C"]), min_size=1, max_size=30)


@given(messages)
@settings(max_examples=60, deadline=None)
def test_network_delivers_fifo_per_pair(kinds):
    """With constant latency, per-pair delivery order equals send
    order, and every message between connected nodes is delivered
    exactly once."""
    sim = Simulator()
    net = Network(sim, NetworkParams(latency=1e-3))
    a, b = net.attach("a"), net.attach("b")
    received = []

    def consumer(sim):
        for _ in range(len(kinds)):
            msg = yield b.receive()
            received.append(msg.kind)

    sim.process(consumer(sim))

    def producer(sim):
        for i, kind in enumerate(kinds):
            a.send_to("b", kind, seq=i)
            yield sim.timeout(1e-5)

    sim.process(producer(sim))
    sim.run(until=sim.now + 10.0)
    assert received == kinds


@given(messages, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_network_jitter_never_loses_messages(kinds, seed):
    from repro.sim import RngRegistry

    sim = Simulator()
    net = Network(sim, NetworkParams(latency=1e-3, jitter=5e-3), rng=RngRegistry(seed))
    a, b = net.attach("a"), net.attach("b")
    for kind in kinds:
        a.send_to("b", kind)
    sim.run(until=sim.now + 10.0)
    assert len(b.mailbox) == len(kinds)
