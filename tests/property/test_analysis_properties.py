"""Property-based tests for the analysis layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.costs import _disjoint_interval_count
from repro.analysis.metrics import percentile

import pytest

pytestmark = pytest.mark.slow

floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(st.lists(st.tuples(floats, floats), max_size=30))
def test_disjoint_count_bounded(raw):
    intervals = [(min(a, b), max(a, b)) for a, b in raw]
    count = _disjoint_interval_count(intervals)
    assert 0 <= count <= len(intervals)
    if intervals:
        assert count >= 1


@given(st.lists(floats, min_size=1, max_size=20))
def test_disjoint_count_of_chain_is_all(points):
    """Sequential non-overlapping intervals all count."""
    points = sorted(set(points))
    intervals = [(points[i], points[i]) for i in range(len(points))]
    assert _disjoint_interval_count(intervals) == len(intervals)


@given(st.lists(floats, min_size=2, max_size=20))
def test_fully_overlapping_intervals_count_once(points):
    lo, hi = min(points), max(points) + 1.0
    intervals = [(lo, hi)] * len(points)
    assert _disjoint_interval_count(intervals) == 1


@given(st.lists(floats, min_size=1, max_size=50), st.floats(min_value=0, max_value=100))
def test_percentile_within_bounds(values, pct):
    values = sorted(values)
    p = percentile(values, pct)
    assert values[0] <= p <= values[-1]


@given(st.lists(floats, min_size=1, max_size=50))
def test_percentile_monotone_in_pct(values):
    values = sorted(values)
    ps = [percentile(values, q) for q in (0, 25, 50, 75, 100)]
    assert ps == sorted(ps)


@given(
    st.lists(
        st.tuples(floats, st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60)
def test_throughput_positive_for_nonzero_makespan(raw):
    from repro.analysis.metrics import throughput
    from repro.protocols.base import TxnOutcome

    outcomes = [
        TxnOutcome(
            txn_id=i,
            op="CREATE",
            path=f"/d/{i}",
            committed=True,
            submitted_at=t,
            replied_at=t + dt,
            finished_at=t + dt,
            coordinator="mds1",
        )
        for i, (t, dt) in enumerate(raw)
    ]
    assert throughput(outcomes) > 0
