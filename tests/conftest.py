"""Repo-wide fixtures: protocol parametrisation, cache isolation."""

import pytest

ALL_PROTOCOLS = ("PrN", "PrC", "EP", "1PC")
TWO_PC_FAMILY = ("PrN", "PrC", "EP")


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point ``REPRO_CACHE_DIR`` at a session tmpdir.

    Tests must never read results cached by earlier runs (or other
    checkouts) on the developer's machine, nor litter ``~/.cache`` —
    see docs/testing.md.
    """
    import os

    root = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(params=ALL_PROTOCOLS)
def protocol(request):
    """Parametrises a test over all four commit protocols."""
    return request.param


@pytest.fixture(params=TWO_PC_FAMILY)
def twopc_protocol(request):
    """Parametrises a test over the 2PC family only."""
    return request.param
