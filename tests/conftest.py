"""Repo-wide fixtures: protocol parametrisation."""

import pytest

ALL_PROTOCOLS = ("PrN", "PrC", "EP", "1PC")
TWO_PC_FAMILY = ("PrN", "PrC", "EP")


@pytest.fixture(params=ALL_PROTOCOLS)
def protocol(request):
    """Parametrises a test over all four commit protocols."""
    return request.param


@pytest.fixture(params=TWO_PC_FAMILY)
def twopc_protocol(request):
    """Parametrises a test over the 2PC family only."""
    return request.param
