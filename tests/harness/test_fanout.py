"""Fan-out sweep: N-participant transactions on a sharded namespace.

The golden document pins the full ``repro sweep --kind fanout`` cell
set (k ∈ {1, 2, 4, 8} × {PrN, 1PC-N}, 16 files, seed 0) byte-for-byte.
Regenerate after an intentional kernel/protocol change with:

    PYTHONPATH=src python -c "
    import json
    from repro.exec import fanout_grid, execute_spec
    specs = fanout_grid(fanouts=(1, 2, 4, 8), protocols=('PrN', '1PC-N'), n_files=16, seed=0)
    docs = [execute_spec(s).to_dict() for s in specs]
    open('tests/golden/fanout_sweep.json', 'w').write(
        json.dumps(docs, sort_keys=True, separators=(',', ':')) + '\\n')
    "
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cache import ResultCache
from repro.core.batching import BatchPlanner
from repro.exec import execute_spec, fanout_grid, run_sweep
from repro.harness.fanout import (
    HOT_DIR,
    fanout_cluster,
    run_fanout_cell,
    sweep_fanout,
)

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "fanout_sweep.json"

GOLDEN_PROTOCOLS = ("PrN", "1PC-N")
GOLDEN_FANOUTS = (1, 2, 4, 8)


def _golden_specs():
    return fanout_grid(
        fanouts=GOLDEN_FANOUTS, protocols=GOLDEN_PROTOCOLS, n_files=16, seed=0
    )


def test_fanout_sweep_matches_golden():
    docs = [execute_spec(spec).to_dict() for spec in _golden_specs()]
    current = json.dumps(docs, sort_keys=True, separators=(",", ":")) + "\n"
    assert current == GOLDEN.read_text(), (
        "fanout sweep diverged from the golden document — a "
        "kernel/protocol/placement change perturbed event order or "
        "virtual timestamps; if intentional, regenerate (see module "
        "docstring)"
    )


def test_fanout_golden_is_nontrivial():
    docs = json.loads(GOLDEN.read_text())
    assert len(docs) == len(GOLDEN_FANOUTS) * len(GOLDEN_PROTOCOLS)
    seen = {(d["spec"]["protocol"], d["spec"]["fanout"]) for d in docs}
    assert seen == {(p, k) for p in GOLDEN_PROTOCOLS for k in GOLDEN_FANOUTS}
    for doc in docs:
        # Every batch committed: files / fanout transactions, 0 aborts.
        assert doc["committed"] == 16 // doc["spec"]["fanout"]
        assert doc["aborted"] == 0
        assert doc["throughput"] > 0


def test_fanout_sweep_warm_cache_is_byte_identical(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    cold = run_sweep(_golden_specs(), kind="fanout", cache=cache)
    warm = run_sweep(_golden_specs(), kind="fanout", cache=cache)
    assert cold.cached == 0 and cold.computed == len(_golden_specs())
    assert warm.cached == len(_golden_specs()) and warm.computed == 0
    assert cold.to_json(canonical=True) == warm.to_json(canonical=True)


def test_batches_span_exactly_k_workers():
    for k in (1, 2, 4, 8):
        cluster = fanout_cluster("PrN", k)
        client = cluster.new_client()
        plans = [client.plan_create(f"{HOT_DIR}/f{i}") for i in range(16)]
        batches = BatchPlanner(max_batch=k, max_workers=None).partition(plans)
        assert len(batches) == 16 // k
        for batch in batches:
            assert batch.coordinator == "mds0"
            assert len(batch.workers) == k


def test_wider_transactions_amortise_forced_writes():
    narrow = run_fanout_cell("1PC-N", 1, n_files=16)
    wide = run_fanout_cell("1PC-N", 8, n_files=16)
    assert wide.forced_writes < narrow.forced_writes
    assert wide.throughput > narrow.throughput


def test_fanout_defaults_exclude_single_worker_protocols():
    names = {spec.protocol for spec in fanout_grid(fanouts=(2,), n_files=4)}
    assert "1PC" not in names and "LGL" not in names
    assert {"PrN", "1PC-N"} <= names


def test_sweep_fanout_entry_point():
    table = sweep_fanout((1, 2), protocols=("1PC-N",), n_files=4)
    assert set(table) == {("1PC-N", 1), ("1PC-N", 2)}
    assert all(v > 0 for v in table.values())


def test_run_fanout_cell_rejects_fanout_wider_than_shards():
    with pytest.raises(ValueError, match="cannot exceed"):
        run_fanout_cell("PrN", 4, n_files=8, n_shards=2)
