"""Direct unit tests for the sweep, scaling and placement harnesses."""

import pytest

from repro.harness.placement_study import run_placement_point, run_placement_study
from repro.harness.scaling import StripedPlacement, run_scaling_point, sweep_scaling
from repro.harness.sweeps import (
    sweep_abort_rate,
    sweep_burst_size,
    sweep_disk_bandwidth,
    sweep_network_latency,
)


def test_sweep_network_latency_shape():
    table = sweep_network_latency([100e-6, 1e-3], protocols=("PrN", "1PC"), n=15)
    assert set(table) == {100e-6, 1e-3}
    for row in table.values():
        assert set(row) == {"PrN", "1PC"}
        assert all(v > 0 for v in row.values())
    # Higher latency, lower throughput.
    assert table[1e-3]["1PC"] < table[100e-6]["1PC"]


def test_sweep_disk_bandwidth_shape():
    from repro.config import KB

    table = sweep_disk_bandwidth([200 * KB, 800 * KB], protocols=("1PC",), n=15)
    assert table[800 * KB]["1PC"] > table[200 * KB]["1PC"]


def test_sweep_burst_size_shape():
    table = sweep_burst_size([5, 20], protocols=("1PC",))
    assert set(table) == {5, 20}
    assert all(v > 0 for row in table.values() for v in row.values())


def test_sweep_abort_rate_validates_rate():
    with pytest.raises(ValueError):
        sweep_abort_rate([1.5], protocols=("1PC",), n=5)


def test_sweep_abort_rate_zero_equals_burst():
    table = sweep_abort_rate([0.0], protocols=("1PC",), n=10)
    assert table[0.0]["1PC"] > 0


def test_striped_placement_pairs():
    p = StripedPlacement(2)
    from repro.fs import ObjectId

    assert p.place(ObjectId.directory("/dir1")) == "mds1"
    assert p.place(ObjectId.directory("/dir2")) == "mds3"
    p.hint_inode_path(100, "/dir1/f0")
    assert p.place(ObjectId.inode(100)) == "mds2"
    p.hint_inode_path(101, "/dir2/f0")
    assert p.place(ObjectId.inode(101)) == "mds4"


def test_run_scaling_point_single_pair():
    tput = run_scaling_point("1PC", 1, ops_per_dir=10)
    assert tput > 0


def test_scaling_sweep_monotone():
    table = sweep_scaling((1, 2), protocols=("1PC",), ops_per_dir=10)
    assert table[2]["1PC"] > table[1]["1PC"]


def test_placement_point_subtree_is_all_local():
    result = run_placement_point("subtree", "1PC", files_per_dir=5)
    assert result.distributed_fraction == 0.0
    assert result.committed == 20


def test_placement_point_hash_is_mostly_distributed():
    result = run_placement_point("hash", "1PC", files_per_dir=5)
    assert result.distributed_fraction > 0.4


def test_placement_study_covers_grid():
    results = run_placement_study(protocols=("1PC",), files_per_dir=5)
    assert {(r.placement, r.protocol) for r in results} == {
        ("hash", "1PC"),
        ("subtree", "1PC"),
    }
