"""Metadata migration (the §V Ursa Minor alternative)."""

import pytest

from repro.fs import plan_migrate
from repro.harness.migration_study import (
    MigratablePlacement,
    migrate_directory,
    run_strategy,
)
from repro.mds.cluster import Cluster


def build_cluster(protocol="1PC"):
    placement = MigratablePlacement({"/": "mds1", "/hot": "mds1"}, default="mds2")
    cluster = Cluster(
        protocol=protocol,
        server_names=["mds1", "mds2"],
        placement=placement,
    )
    cluster.mkdir("/hot")
    return cluster, cluster.new_client()


def seed(cluster, client, n=5):
    def driver(sim):
        for i in range(n):
            result = yield from client.create(f"/hot/f{i}")
            assert result["committed"]

    p = cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=p)
    cluster.sim.run(until=cluster.sim.now + 30.0)


def test_plan_migrate_structure():
    plan = plan_migrate("/hot", {"a": 1, "b": 2}, "mds1", "mds2")
    assert plan.op == "MIGRATE"
    assert plan.coordinator == "mds1"
    assert plan.workers == ["mds2"]
    kinds_src = [type(u).__name__ for u in plan.updates["mds1"]]
    kinds_dst = [type(u).__name__ for u in plan.updates["mds2"]]
    assert kinds_src == ["RemoveDentry", "RemoveDentry", "RemoveDirTable"]
    assert kinds_dst == ["CreateDirTable", "AddDentry", "AddDentry"]
    assert plan.detail["n_entries"] == 2


def test_plan_migrate_same_node_rejected():
    with pytest.raises(ValueError):
        plan_migrate("/hot", {}, "mds1", "mds1")


def test_migration_moves_directory_atomically(protocol):
    cluster, client = build_cluster(protocol)
    seed(cluster, client, n=5)
    before = cluster.listdir("/hot")

    def driver(sim):
        result = yield from migrate_directory(cluster, client, "/hot", "mds2")
        return result

    p = cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["committed"] is True
    cluster.sim.run(until=cluster.sim.now + 60.0)
    assert cluster.check_invariants() == []
    # The table (with identical contents) now lives at mds2 only.
    assert not cluster.store_of("mds1").has_dir("/hot")
    assert cluster.store_of("mds2").listdir("/hot") == before
    # Ownership repointed: new creates are local to mds2.
    plan = client.plan_create("/hot/after")
    assert plan.coordinator == "mds2"
    assert not plan.is_distributed


def test_post_migration_operations_work_end_to_end():
    cluster, client = build_cluster()
    seed(cluster, client, n=3)

    def driver(sim):
        yield from migrate_directory(cluster, client, "/hot", "mds2")
        r1 = yield from client.create("/hot/new")
        r2 = yield from client.delete("/hot/f0")
        return r1["committed"], r2["committed"]

    p = cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value == (True, True)
    cluster.sim.run(until=cluster.sim.now + 60.0)
    assert cluster.check_invariants() == []
    assert set(cluster.listdir("/hot")) == {"f1", "f2", "new"}


def test_migration_crash_atomicity(protocol):
    """Crash the destination mid-migration: the directory is wholly at
    one node or the other, never split, and no dentry is lost."""
    cluster, client = build_cluster(protocol)
    seed(cluster, client, n=5)

    def driver(sim):
        try:
            yield from migrate_directory(cluster, client, "/hot", "mds2")
        except Exception:
            pass

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=cluster.sim.now + 2e-3)
    cluster.crash_server("mds2")
    cluster.restart_server("mds2")
    cluster.sim.run(until=cluster.sim.now + 400.0)
    assert cluster.check_invariants() == []
    at_src = cluster.store_of("mds1").stable_directories.get("/hot")
    at_dst = cluster.store_of("mds2").stable_directories.get("/hot")
    assert (at_src is None) != (at_dst is None), "directory split across nodes"
    surviving = at_src if at_src is not None else at_dst
    assert set(surviving) == {f"f{i}" for i in range(5)}


def test_strategy_runner_validates_strategy():
    with pytest.raises(ValueError):
        run_strategy("teleport", creates=1)


def test_migration_cost_scales_with_directory_size():
    small = run_strategy("migrate-first", creates=2, existing_entries=5)
    large = run_strategy("migrate-first", creates=2, existing_entries=60)
    assert large.total_time > small.total_time * 1.5
