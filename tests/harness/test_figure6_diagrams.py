"""Harness tests: Figure 6 shape, timeline figures, recovery experiment."""

import pytest

from repro.harness.diagrams import FIGURE_OF, render_all_timelines, render_timeline
from repro.harness.figure6 import run_figure6
from repro.harness.recovery import (
    measure_coordinator_crash_recovery,
    measure_worker_crash_recovery,
)


@pytest.fixture(scope="module")
def figure6_small():
    # A reduced burst keeps the test quick; the ordering is stable from
    # n ≈ 20 upward.
    return run_figure6(n=40)


def test_figure6_ordering_matches_paper(figure6_small):
    t = figure6_small.throughputs
    assert t["1PC"] > t["EP"] > t["PrC"] >= t["PrN"] * 0.999


def test_figure6_gains_in_paper_band(figure6_small):
    gains = figure6_small.gain_over("PrN")
    # Paper: 1PC > 50 %, EP ≈ 6.6 %, PrC ≈ 0.4 %.  At the reduced
    # burst the bands are slightly wider.
    assert gains["1PC"] > 35.0
    assert 2.0 < gains["EP"] < 15.0
    assert -0.5 < gains["PrC"] < 2.5


def test_figure6_all_transactions_commit(figure6_small):
    for name, result in figure6_small.results.items():
        assert result.committed == result.n, name
        assert result.cluster.check_invariants() == [], name


def test_figure6_render_mentions_baseline(figure6_small):
    text = figure6_small.render()
    assert "Figure 6" in text
    for name in ("PrN", "PrC", "EP", "1PC"):
        assert name in text
    assert "% vs PrN" in text


@pytest.mark.parametrize("protocol", ["PrN", "PrC", "EP", "1PC"])
def test_timeline_renders_protocol_flow(protocol):
    text = render_timeline(protocol)
    assert f"Figure {FIGURE_OF[protocol]}" in text
    assert "force STARTED" in text
    assert "reply to client" in text
    if protocol == "PrN":
        assert "--PREPARE-->" in text and "--ACK-->" in text
    if protocol == "EP":
        assert "--PREPARE-->" not in text  # piggybacked
        assert "--COMMIT-->" in text
    if protocol == "1PC":
        assert "--PREPARE-->" not in text and "--COMMIT-->" not in text
        assert "--ACK-->" in text
        assert "force REDO" in text or "REDO" in text


def test_timeline_events_in_time_order():
    text = render_timeline("PrN")
    times = []
    for line in text.splitlines():
        parts = line.strip().split()
        if parts and parts[0].replace(".", "", 1).isdigit():
            times.append(float(parts[0]))
    assert times == sorted(times)
    assert len(times) >= 8


def test_render_all_timelines_covers_figures_2_to_5():
    text = render_all_timelines()
    for fig in (2, 3, 4, 5):
        assert f"Figure {fig}" in text


@pytest.mark.parametrize("protocol", ["PrN", "PrC", "EP", "1PC"])
def test_worker_crash_recovery_settles_consistently(protocol):
    result = measure_worker_crash_recovery(protocol)
    assert result.invariant_violations == 0
    assert result.settle_time >= 0


@pytest.mark.parametrize("protocol", ["PrN", "PrC", "EP", "1PC"])
def test_coordinator_crash_recovery_settles_consistently(protocol):
    result = measure_coordinator_crash_recovery(protocol)
    assert result.invariant_violations == 0


def test_1pc_worker_crash_recovery_is_decisive():
    """1PC resolves a dead worker by fencing + reading its log; the
    outcome is decided without waiting for the worker to return."""
    result = measure_worker_crash_recovery("1PC")
    assert result.invariant_violations == 0
    # The coordinator reached a decision (abort: the worker died before
    # committing at t=0.1 ms).
    assert result.committed is False
