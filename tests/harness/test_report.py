"""The one-shot reproduction report."""

import pytest

from repro.harness.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(n=30)


def test_report_contains_all_sections(report_text):
    assert "reproduction report" in report_text
    assert "Table I" in report_text
    assert "Figure 6" in report_text
    assert "Analytical model vs simulation" in report_text
    assert "Crash recovery" in report_text


def test_report_states_parameters(report_text):
    assert "network 100 us" in report_text
    assert "log device 400 KB/s" in report_text


def test_report_shows_measured_table1_agreement(report_text):
    assert "(3, 1) [(3, 1)]" in report_text  # 1PC totals match
    assert "(5, 1) [(5, 1)]" in report_text  # PrN totals match


def test_report_gains_present(report_text):
    assert "measured gains" in report_text
    assert "1PC +" in report_text


def test_cli_report(capsys):
    from repro.cli import main

    code = main(["report", "--n", "25"])
    out = capsys.readouterr().out
    assert code == 0
    assert "reproduction report" in out
