"""Calibration harness and the new CLI subcommands."""

import pytest

from repro.harness.calibrate import (
    PAPER_GAINS,
    grid_search,
    measure_gains,
    score,
)


def test_score_zero_at_paper_gains():
    assert score(dict(PAPER_GAINS)) == 0.0


def test_score_penalises_deviation():
    off = {"PrC": 5.0, "EP": 6.6, "1PC": 60.0}
    assert score(off) > score(dict(PAPER_GAINS))


def test_measure_gains_at_defaults_is_near_paper():
    from repro.config import SimulationParams

    gains = measure_gains(SimulationParams.paper_defaults(), n=40)
    assert abs(gains["PrC"] - PAPER_GAINS["PrC"]) < 2.0
    assert abs(gains["EP"] - PAPER_GAINS["EP"]) < 4.0
    assert gains["1PC"] > 35.0


def test_grid_search_orders_by_score():
    points = grid_search(
        update_sizes=(845.0,),
        state_sizes=(400.0,),
        msg_costs=(0.0, 380e-6),
        n=30,
    )
    assert len(points) == 2
    assert points[0].score <= points[1].score
    # The calibrated dispatch cost must beat a zero-cost network for
    # matching the paper (it is what gives EP its gain).
    assert points[0].msg_processing_latency == pytest.approx(380e-6)
    assert "score" in points[0].describe()


def test_cli_calibrate(capsys):
    from repro.cli import main

    # Tiny bursts keep the CLI smoke test quick.
    code = main(["calibrate", "--n", "20"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Best:" in out and "Target gains" in out


def test_cli_torture_consistent(capsys):
    from repro.cli import main

    code = main(["torture", "--seeds", "2", "--ops", "6", "--protocol", "1PC"])
    out = capsys.readouterr().out
    assert code == 0
    assert "2/2 seeds consistent" in out


def test_cli_trace_writes_jsonl(tmp_path, capsys):
    from repro.cli import main

    out_file = tmp_path / "t.jsonl"
    code = main(["trace", "--protocol", "PrN", "--out", str(out_file)])
    assert code == 0
    lines = out_file.read_text().splitlines()
    assert len(lines) > 20
