"""CLI smoke tests (run in-process via cli.main)."""

import pytest

from repro.cli import main
from repro.protocols.registry import default_protocols

# Cell counts below track the registry: one figure6 cell per protocol.
N_PROTOCOLS = len(default_protocols())


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_table1_paper_only(capsys):
    code, out = run_cli(capsys, "table1", "--paper-only")
    assert code == 0
    assert "Table I" in out and "1PC" in out


def test_cli_table1_measured(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "[(3, 1)]" in out  # measured 1PC totals


def test_cli_figure6_small(capsys):
    code, out = run_cli(capsys, "figure6", "--n", "20")
    assert code == 0
    assert "Figure 6" in out and "vs PrN" in out


def test_cli_timeline_single(capsys):
    code, out = run_cli(capsys, "timeline", "--protocol", "1PC")
    assert code == 0
    assert "Figure 5" in out


def test_cli_timeline_all(capsys):
    code, out = run_cli(capsys, "timeline")
    assert code == 0
    for fig in (2, 3, 4, 5):
        assert f"Figure {fig}" in out


def test_cli_model(capsys):
    code, out = run_cli(capsys, "model")
    assert code == 0
    assert "Analytical model" in out and "Lock hold" in out


def test_cli_burst(capsys):
    code, out = run_cli(capsys, "burst", "--protocol", "EP", "--n", "10")
    assert code == 0
    assert "EP" in out and "invariants: OK" in out


def test_cli_burst_delete(capsys):
    code, out = run_cli(capsys, "burst", "--n", "5", "--op", "delete")
    assert code == 0


def test_cli_sweep_burst(capsys):
    code, out = run_cli(capsys, "sweep", "--kind", "burst")
    assert code == 0
    assert "burst size" in out


def test_cli_recovery(capsys):
    code, out = run_cli(capsys, "recovery")
    assert code == 0
    assert "Recovery" in out


def test_cli_batching(capsys):
    code, out = run_cli(capsys, "batching", "--n", "32")
    assert code == 0
    assert "aggregation" in out


def test_cli_rejects_unknown_protocol(capsys):
    with pytest.raises(SystemExit):
        main(["burst", "--protocol", "3PC"])


def test_cli_sweep_figure6_json_parallel_matches_serial(capsys, tmp_path):
    serial = tmp_path / "serial.json"
    parallel = tmp_path / "parallel.json"
    code, _ = run_cli(capsys, "sweep", "--kind", "figure6", "--n", "8",
                      "--json", str(serial), "--canonical")
    assert code == 0
    code, _ = run_cli(capsys, "sweep", "--kind", "figure6", "--n", "8",
                      "--workers", "4", "--json", str(parallel), "--canonical")
    assert code == 0
    assert serial.read_bytes() == parallel.read_bytes()

    import json

    doc = json.loads(serial.read_text())
    assert doc["kind"] == "figure6"
    from repro.protocols.registry import default_protocols

    assert [c["spec"]["protocol"] for c in doc["cells"]] == list(default_protocols())
    assert all(c["committed"] == 8 for c in doc["cells"])


def test_cli_sweep_scaling_table(capsys):
    code, out = run_cli(capsys, "sweep", "--kind", "scaling", "--n", "6",
                        "--protocol", "1PC")
    assert code == 0
    assert "Scaling" in out and "1PC" in out


def test_cli_trace_spans_jsonl(capsys, tmp_path):
    out = tmp_path / "spans.jsonl"
    code, text = run_cli(capsys, "trace", "--n", "4", "--out", str(out))
    assert code == 0
    assert "4 transaction spans" in text

    import json

    spans = [json.loads(line) for line in out.read_text().splitlines()]
    assert len(spans) == 4
    assert all(s["role"] == "coordinator" for s in spans)
    assert all(s["status"] == "committed" for s in spans)


def test_cli_trace_chrome_is_valid(capsys, tmp_path):
    out = tmp_path / "chrome.json"
    code, text = run_cli(capsys, "trace", "--protocol", "PrN", "--n", "4",
                         "--format", "chrome", "--out", str(out))
    assert code == 0
    assert "Perfetto" in text

    import json

    from repro.obs import validate_trace_event

    assert validate_trace_event(json.loads(out.read_text())) == []


def test_cli_trace_records_legacy_format(capsys, tmp_path):
    out = tmp_path / "records.jsonl"
    code, text = run_cli(capsys, "trace", "--n", "3", "--format", "records",
                         "--out", str(out))
    assert code == 0
    assert "trace records" in text
    assert out.read_text().count("\n") > 10


def test_cli_sweep_progress_reports_cells(capsys, tmp_path):
    code = main(["sweep", "--kind", "figure6", "--n", "6", "--progress"])
    captured = capsys.readouterr()
    assert code == 0
    assert f"[{N_PROTOCOLS}/{N_PROTOCOLS}]" in captured.err


def test_cli_sweep_cache_warm_run_hits_and_matches(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cold_json = tmp_path / "cold.json"
    warm_json = tmp_path / "warm.json"

    code = main(["sweep", "--kind", "figure6", "--n", "7",
                 "--json", str(cold_json), "--canonical"])
    captured = capsys.readouterr()
    assert code == 0
    assert f"0 hits, {N_PROTOCOLS} computed" in captured.err

    code = main(["sweep", "--kind", "figure6", "--n", "7",
                 "--json", str(warm_json), "--canonical"])
    captured = capsys.readouterr()
    assert code == 0
    assert f"{N_PROTOCOLS} hits, 0 computed" in captured.err
    assert cold_json.read_bytes() == warm_json.read_bytes()


def test_cli_sweep_no_cache_and_refresh(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code = main(["sweep", "--kind", "figure6", "--n", "7", "--no-cache"])
    captured = capsys.readouterr()
    assert code == 0
    assert "cache:" not in captured.err
    assert not (tmp_path / "cache").exists()

    main(["sweep", "--kind", "figure6", "--n", "7"])
    capsys.readouterr()
    code = main(["sweep", "--kind", "figure6", "--n", "7", "--refresh"])
    captured = capsys.readouterr()
    assert code == 0
    assert f"0 hits, {N_PROTOCOLS} computed" in captured.err


def test_cli_cache_stats_clear_gc(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    main(["sweep", "--kind", "figure6", "--n", "7"])
    capsys.readouterr()

    code, out = run_cli(capsys, "cache", "stats")
    assert code == 0
    assert f"entries:     {N_PROTOCOLS}" in out and f"burst={N_PROTOCOLS}" in out

    code, out = run_cli(capsys, "cache", "gc", "--max-size", "0")
    assert code == 0
    assert f"evicted {N_PROTOCOLS} entries" in out

    code, out = run_cli(capsys, "cache", "clear")
    assert code == 0
    assert "removed 0 cached entries" in out


def test_cli_cache_gc_rejects_negative_budget(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, out = run_cli(capsys, "cache", "gc", "--max-size", "-1")
    assert code == 2
    assert "must be >= 0" in out


def test_cli_protocols_lists_registry(capsys):
    code, out = run_cli(capsys, "protocols")
    assert code == 0
    assert f"Registered commit protocols ({N_PROTOCOLS})" in out
    for name in ("PrN", "PrC", "EP", "1PC", "PrA", "PC", "LGL", "1PC-N"):
        assert name in out
    assert "needs_acceptors" in out and "logless" in out


def test_cli_protocols_json_is_machine_readable(capsys):
    import json

    code, out = run_cli(capsys, "protocols", "--json")
    assert code == 0
    doc = json.loads(out)
    assert [e["name"] for e in doc] == [
        "PrN", "PrC", "EP", "1PC", "PrA", "PC", "LGL", "1PC-N",
    ]
    by_name = {e["name"]: e for e in doc}
    assert by_name["PC"]["capabilities"] == ["needs_acceptors"]
    assert by_name["LGL"]["log_records"] == []
    assert by_name["1PC"]["paper_figure6"] == 24.0
    assert by_name["PC"]["table1_row"] == [11, 1, 5, 1, 15, 15]


def test_cli_extension_protocols_selectable(capsys):
    code, out = run_cli(capsys, "burst", "--protocol", "PC", "--n", "4")
    assert code == 0
    assert "invariants: OK" in out
    code, out = run_cli(capsys, "burst", "--protocol", "LGL", "--n", "4")
    assert code == 0
    assert "invariants: OK" in out
