"""Hard links (LINK) across the protocols."""

import pytest

from tests.protocols.conftest import drain, make_cluster, run_create


def test_link_commits_and_raises_nlink(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)

    def scenario(sim):
        result = yield from client.link("/dir1/f0", "/dir1/hard")
        return result

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    ino = cluster.lookup("/dir1/f0")
    assert cluster.lookup("/dir1/hard") == ino
    assert cluster.store_of("mds2").inode(ino).nlink == 2


def test_delete_one_link_keeps_inode(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)

    def scenario(sim):
        yield from client.link("/dir1/f0", "/dir1/hard")
        yield from client.delete("/dir1/f0")

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    drain(cluster)
    assert cluster.check_invariants() == []
    ino = cluster.lookup("/dir1/hard")
    assert ino is not None
    assert cluster.store_of("mds2").inode(ino).nlink == 1
    assert cluster.lookup("/dir1/f0") is None


def test_delete_last_link_drops_inode():
    cluster, client = make_cluster("1PC")
    run_create(cluster, client)

    def scenario(sim):
        yield from client.link("/dir1/f0", "/dir1/hard")
        yield from client.delete("/dir1/f0")
        yield from client.delete("/dir1/hard")

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.store_of("mds2").stable_inodes == {}


def test_link_to_missing_target_raises():
    cluster, client = make_cluster("1PC")
    with pytest.raises(FileNotFoundError):
        client.plan_link("/dir1/ghost", "/dir1/hard")


def test_link_onto_itself_rejected():
    from repro.fs import HashPlacement, plan_link

    with pytest.raises(ValueError):
        plan_link("/d/x", "/d/x", 1, HashPlacement(["only"]))


def test_link_name_collision_aborts(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)

    def scenario(sim):
        yield from client.create("/dir1/other")
        result = yield from client.link("/dir1/other", "/dir1/f0")
        return result

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["committed"] is False
    drain(cluster)
    assert cluster.check_invariants() == []


def test_link_crash_atomicity():
    """Crash the inode-home MDS mid-LINK: dentry count and nlink agree
    after recovery."""
    cluster, client = make_cluster("1PC")
    run_create(cluster, client)
    drain(cluster, budget=30.0)
    client.submit(client.plan_link("/dir1/f0", "/dir1/hard"))
    cluster.sim.run(until=cluster.sim.now + 2e-3)
    cluster.crash_server("mds2")
    cluster.restart_server("mds2")
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
