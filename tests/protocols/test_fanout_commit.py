"""N-participant 1PC: the generalised forced-commit-as-vote protocol.

``1PC-N`` fans the redo updates to k workers; each worker's forced
UPDATES+COMMITTED record is its vote.  The partial-failure semantics
under test here:

* no worker force-committed -> the transaction aborts everywhere;
* any worker force-committed -> the outcome is COMMIT and the
  coordinator drives the stragglers (crashed, refused, or fenced)
  with decided retransmissions until every shard has applied.
"""

import pytest

from repro import Cluster
from repro.core.batching import BatchPlanner
from repro.fs.operations import UnsupportedOperation
from repro.fs.placement import ShardedSubtreePlacement
from repro.harness.fanout import COORDINATOR, HOT_DIR, fanout_cluster
from repro.protocols.base import Transaction
from repro.protocols.registry import reject_fanout

K = 4


def batch_of(client, k=K):
    plans = [client.plan_create(f"{HOT_DIR}/f{i}") for i in range(k)]
    return BatchPlanner(max_batch=k, max_workers=None).merge(plans)


def hot_files(cluster, batch):
    """(dentries present, worker inodes present) for the batch."""
    table = cluster.store_of(COORDINATOR).stable_directories.get(HOT_DIR, {})
    placed = sum(1 for i in range(K) if f"f{i}" in table)
    inodes = sum(len(cluster.store_of(w).stable_inodes) for w in batch.workers)
    return placed, inodes


def test_k_worker_batch_commits_and_cleans_logs():
    cluster = fanout_cluster("1PC-N", K)
    client = cluster.new_client()
    batch = batch_of(client)
    assert len(batch.workers) == K
    done = cluster.sim.process(client.run(batch), name="wide")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    assert hot_files(cluster, batch) == (K, K)
    for node in (COORDINATOR, *batch.workers):
        assert cluster.storage.log_of(node).durable_records == ()


def test_single_refusal_is_overridden_once_siblings_committed():
    # The documented 1PC-N caveat: a worker's refusal cannot veto a
    # transaction its siblings already force-committed — the refuser
    # is driven with a decided retransmission instead.
    cluster = fanout_cluster("1PC-N", K, trace=True)
    client = cluster.new_client()
    batch = batch_of(client)
    cluster.servers[batch.workers[-1]].fail_next_vote = True
    done = cluster.sim.process(client.run(batch), name="wide")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    assert hot_files(cluster, batch) == (K, K)
    assert cluster.trace.count("partial_commit_resolution") == 1


def test_all_refusals_abort_with_no_residue():
    cluster = fanout_cluster("1PC-N", K)
    client = cluster.new_client()
    batch = batch_of(client)
    for worker in batch.workers:
        cluster.servers[worker].fail_next_vote = True
    done = cluster.sim.process(client.run(batch), name="wide")
    cluster.sim.run(until=done)
    assert done.value["committed"] is False
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    assert hot_files(cluster, batch) == (0, 0)
    for node in (COORDINATOR, *batch.workers):
        assert cluster.servers[node].locks._table == {}


@pytest.mark.parametrize("crash_at", [0.5e-3, 2e-3, 4e-3])
def test_partial_crash_converges_to_full_commit(crash_at):
    # One worker dies mid-transaction while its k-1 siblings are alive:
    # at least one sibling force-commits, so the outcome is COMMIT and
    # the rebooted victim must be driven until its shard has applied.
    cluster = fanout_cluster("1PC-N", K)
    client = cluster.new_client()
    batch = batch_of(client)
    victim = batch.workers[1]
    client.submit(batch)
    cluster.sim.run(until=crash_at)
    cluster.crash_server(victim)
    cluster.restart_server(victim)
    cluster.sim.run(until=cluster.sim.now + 600.0)
    assert cluster.check_invariants() == []
    assert hot_files(cluster, batch) == (K, K)
    outcomes = [o for o in cluster.outcomes if o.committed]
    assert len(outcomes) == 1


def test_reject_fanout_message_names_alternatives():
    msg = reject_fanout("1PC", 1, 4)
    assert msg.startswith("1PC handles transactions with at most 1 worker, got 4")
    for name in ("PrN", "PrC", "EP", "PrA", "PC", "1PC-N"):
        assert name in msg
    assert "fallback=" in msg


def test_1pc_engine_rejects_wide_plan_at_coordinate():
    workers = ["mds1", "mds2"]
    placement = ShardedSubtreePlacement(
        ["mds0", *workers], {"/": "mds0"}, stripe=workers
    )
    cluster = Cluster(
        protocol="1PC",
        server_names=["mds0", *workers],
        placement=placement,
        fallback=None,
        trace=False,
    )
    cluster.mkdir(HOT_DIR)
    client = cluster.new_client()
    plans = [client.plan_create(f"{HOT_DIR}/f{i}") for i in range(2)]
    batch = BatchPlanner(max_batch=2, max_workers=None).merge(plans)
    txn = Transaction(txn_id=1, plan=batch, client=client.name, submitted_at=0.0)
    engine = cluster.servers["mds0"].protocol
    with pytest.raises(UnsupportedOperation, match="fan-out-capable"):
        next(engine.coordinate(txn))


def test_fanout_capable_protocol_gets_no_fallback_engine():
    cluster = fanout_cluster("1PC-N", 2)
    assert cluster.servers[COORDINATOR].fallback is None
