"""Every registered protocol must pass the conformance kit."""

import pytest

from repro.protocols import PROTOCOLS
from repro.protocols.conformance import ConformanceReport, check_protocol


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_registered_protocol_conforms(name):
    report = check_protocol(name)
    assert report.ok, f"{name} failed conformance: {report.failures}"
    # The battery is substantial: liveness (4) + abort (5) + crash
    # sweep (2 victims x 4 points x 2 checks) + fault scenarios
    # (3 scenarios x 3 checks) + isolation (3).
    assert report.checks_run >= 25


def test_report_records_failures():
    report = ConformanceReport("X")
    report.record(True, "fine")
    report.record(False, "broken")
    assert not report.ok
    assert report.failures == ["broken"]
    assert report.checks_run == 2
