"""Multi-worker transactions: wide RENAMEs under the 2PC family.

The 2PC-family coordinators generalise to N workers (the paper's
RENAME can span four MDSs, §I); these tests drive three- and four-MDS
transactions, including worker crashes during the vote.
"""

import pytest

from repro import Cluster
from repro.fs import ObjectId


class FourWayPlacement:
    """/src on mds1, /dst on mds2, even inodes on mds3, odd on mds4."""

    def place(self, obj: ObjectId) -> str:
        if obj.kind == "dir":
            return "mds1" if obj.key.startswith("/src") or obj.key == "/" else "mds2"
        return "mds3" if int(obj.key) % 2 == 0 else "mds4"

    def pin(self, obj, node):
        pass


def four_mds_cluster(protocol):
    cluster = Cluster(
        protocol=protocol,
        server_names=["mds1", "mds2", "mds3", "mds4"],
        placement=FourWayPlacement(),
        fallback="PrN" if protocol == "1PC" else None,
    )
    cluster.mkdir("/src")
    cluster.mkdir("/dst")
    return cluster, cluster.new_client()


def seed_file(cluster, client, path="/src/x"):
    done = cluster.sim.process(client.run(client.plan_create(path)), name="seed")
    cluster.sim.run(until=done)
    assert done.value["committed"]
    cluster.sim.run(until=cluster.sim.now + 30.0)
    return cluster.lookup(path)


def all_consistent(cluster):
    assert cluster.check_invariants() == [], cluster.check_invariants()


def test_four_mds_rename_commits(twopc_protocol):
    cluster, client = four_mds_cluster(twopc_protocol)
    seed_file(cluster, client)
    plan = client.plan_rename("/src/x", "/dst/y")
    assert len(plan.participants) >= 3
    done = cluster.sim.process(client.run(plan), name="rename")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    cluster.sim.run(until=cluster.sim.now + 60.0)
    all_consistent(cluster)
    assert cluster.lookup("/dst/y") is not None
    assert cluster.lookup("/src/x") is None


def test_four_mds_rename_with_replacement(twopc_protocol):
    cluster, client = four_mds_cluster(twopc_protocol)
    seed_file(cluster, client, "/src/x")
    seed_file(cluster, client, "/dst/y")
    plan = client.plan_rename("/src/x", "/dst/y")
    # src dir, dst dir, replaced inode, renamed inode: up to 4 MDSs.
    assert len(plan.participants) >= 3
    done = cluster.sim.process(client.run(plan), name="rename")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    cluster.sim.run(until=cluster.sim.now + 60.0)
    all_consistent(cluster)
    # Exactly one inode remains reachable at /dst/y.
    assert cluster.lookup("/dst/y") is not None


def test_multiworker_vote_refusal_aborts_everywhere(twopc_protocol):
    cluster, client = four_mds_cluster(twopc_protocol)
    ino = seed_file(cluster, client)
    plan = client.plan_rename("/src/x", "/dst/y")
    workers = plan.workers
    assert len(workers) >= 2
    # One of the workers refuses its vote.
    cluster.servers[workers[-1]].fail_next_vote = True
    done = cluster.sim.process(client.run(plan), name="rename")
    cluster.sim.run(until=done)
    assert done.value["committed"] is False
    cluster.sim.run(until=cluster.sim.now + 120.0)
    all_consistent(cluster)
    # Nothing moved.
    assert cluster.lookup("/src/x") == ino
    assert cluster.lookup("/dst/y") is None


@pytest.mark.parametrize("crash_at", [1e-3, 3e-3, 6e-3, 10e-3])
def test_multiworker_worker_crash_atomicity(twopc_protocol, crash_at):
    cluster, client = four_mds_cluster(twopc_protocol)
    seed_file(cluster, client)
    plan = client.plan_rename("/src/x", "/dst/y")
    victim = plan.workers[0]
    client.submit(plan)
    cluster.sim.run(until=cluster.sim.now + crash_at)
    cluster.crash_server(victim)
    cluster.restart_server(victim)
    cluster.sim.run(until=cluster.sim.now + 700.0)
    all_consistent(cluster)
    src = cluster.lookup("/src/x")
    dst = cluster.lookup("/dst/y")
    # All-or-nothing: the file is in exactly one place.
    assert (src is None) != (dst is None)


def test_multiworker_coordinator_crash_atomicity(twopc_protocol):
    cluster, client = four_mds_cluster(twopc_protocol)
    seed_file(cluster, client)
    plan = client.plan_rename("/src/x", "/dst/y")
    client.submit(plan)
    cluster.sim.run(until=cluster.sim.now + 3e-3)
    cluster.crash_server(plan.coordinator)
    cluster.restart_server(plan.coordinator)
    cluster.sim.run(until=cluster.sim.now + 700.0)
    all_consistent(cluster)
    src = cluster.lookup("/src/x")
    dst = cluster.lookup("/dst/y")
    assert (src is None) != (dst is None)


def test_1pc_cluster_runs_wide_renames_via_fallback_under_load():
    cluster, client = four_mds_cluster("1PC")
    # A mix: creates handled by 1PC, renames by the PrN fallback.
    paths = [f"/src/f{i}" for i in range(6)]

    def scenario(sim):
        for path in paths:
            result = yield from client.run(client.plan_create(path))
            assert result["committed"]
        for i, path in enumerate(paths):
            result = yield from client.rename(path, f"/dst/g{i}")
            assert result["committed"]

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    cluster.sim.run(until=cluster.sim.now + 120.0)
    all_consistent(cluster)
    assert len(cluster.listdir("/dst")) == 6
    assert cluster.listdir("/src") == {}
    assert cluster.trace.count("fallback_protocol") == 6
