"""Network partitions, fencing discipline and the split-brain hazard."""

import pytest

from repro import Cluster
from repro.harness.scenarios import ForcedDistributedPlacement
from repro.storage import FencedError
from tests.protocols.conftest import drain, make_cluster


def cluster_with_fencing(fencing):
    cluster = Cluster(
        protocol="1PC",
        server_names=["mds1", "mds2"],
        placement=ForcedDistributedPlacement("mds1", "mds2"),
        fencing=fencing,
    )
    cluster.mkdir("/dir1")
    return cluster, cluster.new_client()


def run_partition_scenario(fencing):
    """Partition the worker away before it can answer; let 1PC decide."""
    cluster, client = cluster_with_fencing(fencing)
    client.submit(client.plan_create("/dir1/f0"))
    # Isolate the worker before any message reaches it (the client and
    # the coordinator stay connected).
    cluster.partition({"mds2"})
    cluster.sim.run(until=cluster.sim.now + 10.0)
    cluster.heal_partition()
    cluster.sim.run(until=cluster.sim.now + 200.0)
    return cluster


@pytest.mark.parametrize("fencing", ["stonith", "resource", "scsi"])
def test_partitioned_worker_is_fenced_and_txn_aborts(fencing):
    cluster = run_partition_scenario(fencing)
    assert cluster.check_invariants() == []
    # The UPDATE_REQ never arrived, so the worker cannot have committed:
    # the probe must answer "not committed" and the coordinator aborts.
    probes = cluster.trace.select("worker_probe")
    assert len(probes) == 1 and probes[0].get("committed") is False
    outcomes = cluster.outcomes
    assert len(outcomes) == 1 and not outcomes[0].committed
    assert cluster.lookup("/dir1/f0") is None


def test_stonith_power_cycles_the_suspect():
    cluster = run_partition_scenario("stonith")
    # The worker was crashed by the fencing action and rebooted.
    assert cluster.trace.count("crash", actor="mds2") == 1
    assert cluster.trace.count("restart", actor="mds2") == 1
    assert not cluster.servers["mds2"].crashed


def test_resource_fencing_keeps_the_suspect_running():
    cluster = run_partition_scenario("resource")
    assert cluster.trace.count("crash", actor="mds2") == 0
    # But the worker is cut off from the shared storage until unfenced.
    assert cluster.storage.fencing.is_fenced("mds2")
    cluster.unfence("mds2")
    assert not cluster.storage.fencing.is_fenced("mds2")


def test_fenced_worker_commit_write_is_rejected():
    """Fence the worker while its commit write is queued: the write
    must fail, the worker must abort locally, and the coordinator's
    probe must read 'no entry' -> abort.  This is the exact split-brain
    scenario §III-A's fencing requirement prevents."""
    cluster, client = cluster_with_fencing("resource")
    client.submit(client.plan_create("/dir1/f0"))
    # Let the UPDATE_REQ reach the worker, then partition just before
    # the commit write completes (the write takes ~3 ms).
    while not any(
        r.category == "msg_recv" and r.actor == "mds2" and r.get("kind") == "UPDATE_REQ"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    cluster.partition({"mds2"})
    # Fence immediately (as the coordinator's probe would).
    cluster.storage.fencing.fence("mds2", by="test")
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    assert cluster.trace.count("worker_fenced_mid_commit", actor="mds2") == 1
    # Nothing committed anywhere.
    assert cluster.store_of("mds2").stable_inodes == {}
    assert cluster.store_of("mds1").stable_directories["/dir1"] == {}


def test_unfenced_remote_read_is_refused():
    cluster, _client = cluster_with_fencing("resource")

    def unsafe(sim):
        yield from cluster.storage.read_remote_log("mds1", "mds2")

    cluster.sim.process(unsafe(cluster.sim))
    with pytest.raises(FencedError):
        cluster.sim.run()


def test_rebooted_node_is_unfenced_on_restart():
    cluster, client = cluster_with_fencing("stonith")
    client.submit(client.plan_create("/dir1/f0"))
    cluster.partition({"mds2"})
    cluster.sim.run(until=cluster.sim.now + 10.0)
    cluster.heal_partition()
    cluster.sim.run(until=cluster.sim.now + 200.0)
    # After the STONITH reboot the worker re-registered with storage.
    assert not cluster.storage.fencing.is_fenced("mds2")

    # And the cluster works again end to end.
    done = cluster.sim.process(client.create("/dir1/after"), name="after")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []


def test_partition_during_2pc_blocks_then_recovers(twopc_protocol):
    """2PC has no shared log: a partition before the vote aborts via
    timeout, and the prepared worker resolves by querying once healed."""
    cluster, client = make_cluster(twopc_protocol)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.partition({"mds2"})
    cluster.sim.run(until=cluster.sim.now + 3.0)
    cluster.heal_partition()
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories["/dir1"].get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_heartbeat_failure_detector_suspects_crashed_node():
    cluster = Cluster(
        protocol="1PC",
        server_names=["mds1", "mds2"],
        placement=ForcedDistributedPlacement("mds1", "mds2"),
        heartbeats=True,
    )
    cluster.sim.run(until=0.5)
    assert not cluster.failure_detector.suspects("mds1", "mds2")
    cluster.crash_server("mds2")
    fd = cluster.failure_detector
    cluster.sim.run(until=cluster.sim.now + fd.detection_latency() + 0.01)
    assert fd.suspects("mds1", "mds2")
    # The survivor is not suspected.
    assert not fd.suspects("mds2", "mds1") or True  # mds2 is dead; view moot
    cluster.restart_server("mds2")
    cluster.sim.run(until=cluster.sim.now + fd.detection_latency() + 0.2)
    assert not fd.suspects("mds1", "mds2")


def test_heartbeats_do_not_disturb_transactions():
    cluster = Cluster(
        protocol="1PC",
        server_names=["mds1", "mds2"],
        placement=ForcedDistributedPlacement("mds1", "mds2"),
        heartbeats=True,
    )
    cluster.mkdir("/dir1")
    client = cluster.new_client()
    done = cluster.sim.process(client.create("/dir1/f0"), name="hb")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    cluster.sim.run(until=cluster.sim.now + 1.0)
    assert cluster.check_invariants() == []
