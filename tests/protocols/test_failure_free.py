"""Failure-free behaviour of all four protocols."""

import pytest

from repro.fs import ObjectId
from repro.storage.records import RecordKind
from tests.protocols.conftest import drain, make_cluster, run_create


def test_distributed_create_commits(protocol):
    cluster, client = make_cluster(protocol)
    result = run_create(cluster, client)
    assert result["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/f0") is not None


def test_create_visible_on_both_servers(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    ino = cluster.lookup("/dir1/f0")
    # Dentry at the coordinator, inode at the worker.
    assert cluster.store_of("mds1").lookup("/dir1", "f0") == ino
    assert cluster.store_of("mds2").inode(ino) is not None


def test_delete_roundtrip(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    done = cluster.sim.process(client.delete("/dir1/f0"), name="d")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/f0") is None
    # The inode is gone from the worker too.
    assert cluster.store_of("mds2").stable_inodes == {}


def test_sequential_creates_all_commit(protocol):
    cluster, client = make_cluster(protocol)

    def scenario(sim):
        results = []
        for i in range(5):
            r = yield from client.create(f"/dir1/s{i}")
            results.append(r["committed"])
        return results

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value == [True] * 5
    drain(cluster)
    assert cluster.check_invariants() == []
    assert len(cluster.listdir("/dir1")) == 5


def test_concurrent_creates_serialize_on_directory(protocol):
    cluster, client = make_cluster(protocol)
    n = 10
    for i in range(n):
        client.submit(client.plan_create(f"/dir1/c{i}"))
    while len(cluster.outcomes) < n:
        cluster.sim.step()
    assert all(o.committed for o in cluster.outcomes)
    drain(cluster)
    assert cluster.check_invariants() == []
    assert len(cluster.listdir("/dir1")) == n
    # The directory lock forces distinct commit instants.
    replies = sorted(o.replied_at for o in cluster.outcomes)
    assert len(set(replies)) == n


def test_logs_are_garbage_collected(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    assert cluster.storage.log_of("mds1").durable_records == ()
    assert cluster.storage.log_of("mds2").durable_records == ()


def test_duplicate_create_aborts_with_eexist(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)

    def second(sim):
        result = yield from client.run(client.plan_create("/dir1/f0"))
        return result

    p = cluster.sim.process(second(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value["committed"] is False
    assert "exists" in p.value["reason"]
    drain(cluster)
    assert cluster.check_invariants() == []


def test_local_operation_needs_no_worker(protocol):
    # Same-server placement: the operation is not distributed.
    from repro import Cluster

    cluster = Cluster(protocol=protocol, server_names=["mds1", "mds2"])
    cluster.mkdir("/local", owner="mds1")
    # Pin inodes to mds1 as well.
    cluster.placement.pin(ObjectId.inode(1000), "mds1")
    client = cluster.new_client()
    plan = client.plan_create("/local/x")
    if plan.is_distributed:
        pytest.skip("hash placement made this distributed")
    done = cluster.sim.process(client.run(plan), name="local")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True


def test_local_operation_uses_fast_path(protocol):
    """Single-MDS operations bypass the commit protocol entirely: one
    forced UPDATES+COMMITTED write, no protocol messages."""
    from repro import Cluster
    from repro.fs import SubtreePlacement

    placement = SubtreePlacement(["mds1", "mds2"], {"/": "mds1", "/local": "mds2"})
    cluster = Cluster(protocol=protocol, server_names=["mds1", "mds2"], placement=placement)
    cluster.mkdir("/local")
    client = cluster.new_client()
    plan = client.plan_create("/local/x")
    assert not plan.is_distributed
    done = cluster.sim.process(client.run(plan), name="local")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    # No protocol traffic at all (client request/reply only).
    assert cluster.trace.count("msg_send", kind="UPDATE_REQ") == 0
    assert cluster.trace.count("msg_send", kind="PREPARE") == 0
    # Exactly one forced log write.
    forces = {
        (r.actor, r.time)
        for r in cluster.trace.select("log_append")
        if r.get("sync")
    }
    assert len(forces) == 1


def test_local_operation_conflict_aborts(protocol):
    from repro import Cluster
    from repro.fs import SubtreePlacement

    placement = SubtreePlacement(["mds1", "mds2"], {"/": "mds1", "/local": "mds2"})
    cluster = Cluster(protocol=protocol, server_names=["mds1", "mds2"], placement=placement)
    cluster.mkdir("/local")
    client = cluster.new_client()

    def scenario(sim):
        r1 = yield from client.run(client.plan_create("/local/x"))
        r2 = yield from client.run(client.plan_create("/local/x"))
        return r1["committed"], r2["committed"]

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value == (True, False)
    drain(cluster)
    assert cluster.check_invariants() == []


def test_local_operation_crash_recovery(protocol):
    """A local transaction's durability follows its single forced
    write: crash before it -> nothing; after it -> recovered."""
    from repro import Cluster
    from repro.fs import SubtreePlacement

    placement = SubtreePlacement(["mds1", "mds2"], {"/": "mds1", "/local": "mds2"})
    cluster = Cluster(protocol=protocol, server_names=["mds1", "mds2"], placement=placement)
    cluster.mkdir("/local")
    client = cluster.new_client()
    client.submit(client.plan_create("/local/x"))
    cluster.sim.run(until=1e-3)  # mid-write
    cluster.crash_server("mds2")
    cluster.restart_server("mds2")
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    store = cluster.store_of("mds2")
    dentry = store.stable_directories.get("/local", {}).get("x")
    inodes = store.stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_worker_commit_record_written(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    committed = cluster.trace.select("log_append", actor="mds2", kind=str(RecordKind.COMMITTED))
    assert len(committed) == 1
    # 1PC and the presume-commit family differ in whether it is forced.
    expected_sync = protocol in ("PrN", "1PC")
    assert committed[0].get("sync") is expected_sync


def test_client_latency_ordering_between_protocols():
    """1PC must deliver the lowest single-op client latency, PrN the
    highest (it waits for the ACK before replying)."""
    latencies = {}
    for protocol in ("PrN", "PrC", "EP", "1PC"):
        cluster, client = make_cluster(protocol)
        run_create(cluster, client)
        drain(cluster)
        latencies[protocol] = cluster.outcomes[0].client_latency
    assert latencies["1PC"] < latencies["EP"]
    assert latencies["EP"] < latencies["PrC"]
    assert latencies["PrC"] < latencies["PrN"]


def test_deterministic_trace_across_runs(protocol):
    def run_once():
        cluster, client = make_cluster(protocol)
        run_create(cluster, client)
        drain(cluster)
        return [(r.time, r.category, r.actor) for r in cluster.trace.records]

    assert run_once() == run_once()
