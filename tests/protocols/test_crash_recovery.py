"""Crash/recovery correctness: atomicity under crashes at every phase.

The method: start one distributed CREATE, crash the coordinator or the
worker at a chosen virtual time (sweeping the crash point across the
whole transaction), restart it, let recovery run, and assert

* the namespace invariants hold over the durable state, and
* the transaction is all-or-nothing: the dentry (coordinator side) and
  the inode (worker side) either both exist or both do not.

For 1PC the "all" case is *eventual*: once the worker has committed,
the redo record guarantees the coordinator commits too after reboot.
"""

import pytest

from tests.protocols.conftest import drain, make_cluster


def crash_and_recover(protocol, victim, crash_at, settle=150.0):
    """One CREATE; crash `victim` at `crash_at`; recover; settle."""
    cluster, client = make_cluster(protocol)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=crash_at)
    cluster.crash_server(victim)
    cluster.restart_server(victim)  # after the default reboot delay
    cluster.sim.run(until=cluster.sim.now + settle)
    return cluster


def atomicity_state(cluster):
    """(dentry_exists, inode_exists) over durable state."""
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    return (dentry is not None, len(inodes) > 0)


# Crash points sweeping the transaction: the failure-free CREATE takes
# ~5-8 ms under the calibrated parameters; sample densely across it.
CRASH_POINTS = [0.2e-3, 0.5e-3, 1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3, 8e-3, 12e-3]


@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_worker_crash_atomicity(protocol, crash_at):
    cluster = crash_and_recover(protocol, "mds2", crash_at)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert dentry == inode, (
        f"{protocol}: partial transaction after worker crash at {crash_at}: "
        f"dentry={dentry} inode={inode}"
    )


@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_coordinator_crash_atomicity(protocol, crash_at):
    cluster = crash_and_recover(protocol, "mds1", crash_at)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert dentry == inode, (
        f"{protocol}: partial transaction after coordinator crash at {crash_at}: "
        f"dentry={dentry} inode={inode}"
    )


def test_1pc_commits_eventually_once_worker_committed():
    """Crash the 1PC coordinator right after the worker's commit write:
    the redo record must drive the transaction to commit on reboot."""
    cluster, client = make_cluster("1PC")
    client.submit(client.plan_create("/dir1/f0"))
    # Run until the worker has durably committed.
    while not any(
        r.category == "log_durable"
        and r.actor == "mds2"
        and r.get("kind") == "COMMITTED"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert dentry and inode, "worker committed => transaction must commit"


def test_1pc_aborts_when_worker_never_committed():
    """Crash the 1PC worker before its commit write: the coordinator
    fences it, reads an empty log and aborts."""
    cluster, client = make_cluster("1PC")
    client.submit(client.plan_create("/dir1/f0"))
    # Crash the worker the moment it receives the UPDATE_REQ (before
    # its forced commit completes).
    while not any(
        r.category == "msg_recv" and r.actor == "mds2" and r.get("kind") == "UPDATE_REQ"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    cluster.crash_server("mds2")
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert not dentry and not inode
    # The coordinator reported an abort to the client.
    aborted = [o for o in cluster.outcomes if not o.committed]
    assert len(aborted) == 1
    # And it went through the fencing + shared-log probe.
    assert cluster.trace.count("worker_probe") == 1
    assert cluster.trace.count("fence") >= 1


def test_1pc_stonith_probe_commits_when_log_says_committed():
    """Partition (not crash) after the worker committed: the coordinator
    cannot tell the difference, fences via STONITH, reads COMMITTED in
    the worker's log, and commits."""
    cluster, client = make_cluster("1PC")
    client.submit(client.plan_create("/dir1/f0"))
    while not any(
        r.category == "log_durable"
        and r.actor == "mds2"
        and r.get("kind") == "COMMITTED"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    # Sever the link before the UPDATED message can arrive.
    cluster.partition({"mds1"}, {"mds2"})
    cluster.sim.run(until=cluster.sim.now + 5.0)
    cluster.heal_partition()
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert dentry and inode
    probes = cluster.trace.select("worker_probe")
    assert len(probes) == 1 and probes[0].get("committed") is True


def test_2pc_worker_recovery_asks_coordinator(twopc_protocol):
    """Crash a prepared worker: on reboot it must query the coordinator
    (DECISION_REQ) and then commit."""
    cluster, client = make_cluster(twopc_protocol)
    client.submit(client.plan_create("/dir1/f0"))
    # Run until the worker's PREPARED record is durable.
    while not any(
        r.category == "log_durable"
        and r.actor == "mds2"
        and r.get("kind") == "PREPARED"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    cluster.crash_server("mds2")
    cluster.restart_server("mds2")
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert dentry == inode


def test_coordinator_crash_before_prepare_aborts(twopc_protocol):
    """§II-C: a coordinator that finds only STARTED in its log must
    abort the transaction on reboot."""
    cluster, client = make_cluster(twopc_protocol)
    client.submit(client.plan_create("/dir1/f0"))
    # Crash right after STARTED is durable, before anything else.
    while not any(
        r.category == "log_durable"
        and r.actor == "mds1"
        and r.get("kind") == "STARTED"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert not dentry and not inode
    recoveries = cluster.trace.select("recovery", actor="mds1")
    assert any(r.get("action") == "abort" for r in recoveries)


def test_recovery_preserves_previous_transactions(protocol):
    """A crash must not damage transactions that committed earlier."""
    cluster, client = make_cluster(protocol)
    done = cluster.sim.process(client.create("/dir1/old"), name="old")
    cluster.sim.run(until=done)
    drain(cluster, budget=30.0)
    client.submit(client.plan_create("/dir1/new"))
    cluster.sim.run(until=cluster.sim.now + 1e-3)
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    assert cluster.store_of("mds1").stable_directories["/dir1"].get("old") is not None


def test_server_buffers_client_requests_during_recovery(protocol):
    """§III-D ordering: new client requests wait until reboot-time
    recovery has drained."""
    cluster, client = make_cluster(protocol)
    client.submit(client.plan_create("/dir1/a"))
    cluster.sim.run(until=1e-3)
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    # Submit immediately after the reboot delay; it should be served
    # after recovery completes.
    cluster.sim.run(until=cluster.sim.now + cluster.params.failure.reboot_delay + 1e-3)
    client.submit(client.plan_create("/dir1/b"))
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    assert cluster.store_of("mds1").stable_directories["/dir1"].get("b") is not None


def test_double_crash_both_nodes(protocol):
    """Crash both servers mid-transaction; both recover; state is
    consistent."""
    cluster, client = make_cluster(protocol)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=2e-3)
    cluster.crash_server("mds1")
    cluster.crash_server("mds2")
    cluster.restart_server("mds2", after=0.05)
    cluster.restart_server("mds1", after=0.1)
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    dentry, inode = atomicity_state(cluster)
    assert dentry == inode
