"""The Presumed Abort extension protocol."""

import pytest

from repro.analysis.costs import CostRow, measure_protocol_costs
from repro.storage.records import RecordKind
from tests.protocols.conftest import drain, make_cluster, run_create


def test_pra_commit_path_works():
    cluster, client = make_cluster("PrA")
    result = run_create(cluster, client)
    assert result["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/f0") is not None


def test_pra_commit_costs_match_prn():
    """PrA streamlines aborts only; its commit path costs exactly PrN."""
    assert measure_protocol_costs("PrA").row == CostRow(5, 1, 4, 1, 4, 4)


def test_pra_abort_is_cheap():
    """A PrA abort writes nothing to the coordinator's log."""
    cluster, client = make_cluster("PrA")
    cluster.servers["mds2"].fail_next_vote = True
    result = run_create(cluster, client)
    assert result["committed"] is False
    drain(cluster)
    assert cluster.check_invariants() == []
    # No forced ABORTED record anywhere.
    assert cluster.trace.count("log_append", kind=str(RecordKind.ABORTED)) == 0
    # Logs fully clean.
    assert cluster.storage.log_of("mds1").durable_records == ()
    assert cluster.storage.log_of("mds2").durable_records == ()


def test_pra_prepared_worker_presumes_abort_after_coordinator_crash():
    """The defining recovery rule: a prepared worker asking a
    coordinator with no log entry must be told ABORT."""
    cluster, client = make_cluster("PrA")
    client.submit(client.plan_create("/dir1/f0"))
    # Run until the worker's PREPARED record is durable.
    while not any(
        r.category == "log_durable" and r.actor == "mds2" and r.get("kind") == "PREPARED"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    # Nothing committed anywhere.
    assert cluster.store_of("mds1").stable_directories["/dir1"] == {}
    assert cluster.store_of("mds2").stable_inodes == {}


def test_pra_abort_rate_advantage_over_prc():
    """With heavy aborts PrA outperforms PrC (whose aborts degrade to
    full PrN); with no aborts PrC is at least as good."""
    from repro.harness.sweeps import _burst_with_aborts

    heavy_pra = _burst_with_aborts("PrA", n=30, rate=0.34, params=None)
    heavy_prc = _burst_with_aborts("PrC", n=30, rate=0.34, params=None)
    assert heavy_pra > heavy_prc
    clean_pra = _burst_with_aborts("PrA", n=30, rate=0.0, params=None)
    clean_prc = _burst_with_aborts("PrC", n=30, rate=0.0, params=None)
    assert clean_prc >= clean_pra * 0.98


@pytest.mark.parametrize("crash_at", [1e-3, 3e-3, 5e-3, 8e-3])
@pytest.mark.parametrize("victim", ["mds1", "mds2"])
def test_pra_crash_atomicity(victim, crash_at):
    cluster, client = make_cluster("PrA")
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=crash_at)
    cluster.crash_server(victim)
    cluster.restart_server(victim)
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_pra_differential_matches_prn_on_abort_free_schedules():
    """PrA only changes the abort path: on an abort-free schedule its
    measured behaviour is indistinguishable from PrN — same commits,
    same timing, same cell document apart from the protocol label."""
    import json

    from repro.exec import RunSpec, execute_spec

    docs = {}
    for proto in ("PrN", "PrA"):
        spec = RunSpec(kind="burst", protocol=proto, n=25, seed=3, point="diff")
        doc = execute_spec(spec).to_dict()
        # The protocol label and the seed derived from it are the only
        # admissible differences.
        doc["spec"] = {k: v for k, v in doc["spec"].items() if k != "protocol"}
        doc.pop("derived_seed", None)
        docs[proto] = json.dumps(doc, sort_keys=True)
    assert docs["PrN"] == docs["PrA"]


def test_pra_differential_diverges_from_prn_under_aborts():
    """Sanity check on the differential above: with refused votes in
    the schedule the two protocols are *not* byte-identical (PrA skips
    the forced ABORTED record and the ack round)."""
    from repro.exec import RunSpec, execute_spec

    cells = {}
    for proto in ("PrN", "PrA"):
        spec = RunSpec(kind="abort_burst", protocol=proto, n=20, abort_rate=0.3, seed=3)
        cells[proto] = execute_spec(spec)
    assert cells["PrN"].committed == cells["PrA"].committed
    assert cells["PrA"].throughput > cells["PrN"].throughput


def test_pra_torture():
    from tests.faults.test_torture import assert_all_or_nothing, run_torture

    for seed in range(4):
        cluster = run_torture("PrA", seed)
        assert_all_or_nothing(cluster)
