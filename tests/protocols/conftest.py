"""Shared helpers for protocol tests (fixtures live in tests/conftest.py)."""

from repro.harness.scenarios import distributed_create_cluster

ALL_PROTOCOLS = ("PrN", "PrC", "EP", "1PC")
TWO_PC_FAMILY = ("PrN", "PrC", "EP")


def make_cluster(protocol, **kwargs):
    return distributed_create_cluster(protocol, **kwargs)


def run_create(cluster, client, path="/dir1/f0"):
    """Drive one create to completion; returns the reply payload."""
    done = cluster.sim.process(client.create(path), name="t")
    cluster.sim.run(until=done)
    return done.value


def drain(cluster, budget=120.0):
    """Run the remaining schedule (trailing ACKs, GC, recovery)."""
    cluster.sim.run(until=cluster.sim.now + budget)
