"""Logless one-phase commit (LGL): replication instead of a WAL."""

import pytest

from repro.faults import scenario
from tests.protocols.conftest import drain, make_cluster, run_create


def test_lgl_cluster_provisions_backups():
    cluster, _ = make_cluster("LGL")
    assert set(cluster.backups) == {"mds1", "mds2"}
    assert cluster.backup_of("mds1") is cluster.backups["mds1"]


def test_lgl_commit_path_writes_no_log_records():
    """The defining property: a committed distributed CREATE without a
    single write-ahead-log append anywhere."""
    cluster, client = make_cluster("LGL")
    result = run_create(cluster, client)
    assert result["committed"] is True
    assert cluster.trace.count("log_append") == 0
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/f0") is not None
    assert cluster.trace.count("log_append") == 0


def test_lgl_backups_garbage_collected_after_settle():
    cluster, client = make_cluster("LGL")
    run_create(cluster, client)
    drain(cluster)
    for name in ("mds1", "mds2"):
        replica = cluster.backup_of(name)
        assert replica.entries == {}, f"{name} backup kept {replica.entries}"


def test_lgl_vote_refusal_aborts_cleanly():
    cluster, client = make_cluster("LGL")
    cluster.servers["mds2"].fail_next_vote = True
    result = run_create(cluster, client)
    assert result["committed"] is False
    drain(cluster)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    assert dentry is None
    assert cluster.store_of("mds2").stable_inodes == {}
    for node in ("mds1", "mds2"):
        assert cluster.servers[node].locks._table == {}
        assert cluster.backup_of(node).entries == {}


def test_lgl_sealed_backup_rejects_late_commit_facet():
    """Direct seal semantics: once the coordinator's probe seals a
    transaction at the backup, begin/commit facets bounce (REPLICATE_REJECTED)
    while the abort facet is still accepted."""
    cluster, client = make_cluster("LGL")
    run_create(cluster, client)
    drain(cluster)
    replica = cluster.backup_of("mds2")
    replica.sealed.add(99)
    proto = cluster.servers["mds2"].protocol

    def attempt():
        inbox = cluster.servers["mds2"].open_session(99)
        try:
            verdict = yield from proto._replicate(99, "commit", {"data": 1}, inbox)
        finally:
            cluster.servers["mds2"].close_session(99)
        assert verdict is False  # rejected, not unreachable
        verdict = yield from proto._replicate(99, "aborted", True, inbox)

    done = cluster.sim.process(attempt(), name="seal-test")
    cluster.sim.run(until=done)
    assert "commit" not in replica.entries.get(99, {})


def test_lgl_partition_at_vote_stays_atomic():
    """The coordinator seals the unreachable worker's backup and
    aborts; the sealed worker cannot commit behind its back."""
    cluster, client = make_cluster("LGL")
    scenario("partition-at-vote").install(cluster)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


@pytest.mark.parametrize("crash_at", [1e-3, 3e-3, 5e-3, 8e-3])
@pytest.mark.parametrize("victim", ["mds1", "mds2"])
def test_lgl_crash_atomicity(victim, crash_at):
    cluster, client = make_cluster("LGL")
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=crash_at)
    cluster.crash_server(victim)
    cluster.restart_server(victim)
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_lgl_coordinator_recovery_refetches_from_backup():
    """Crash the coordinator once its begin facet is replicated: the
    reboot has no WAL to read, so recovery must refetch state from the
    backup replica and drive the transaction to one outcome."""
    cluster, client = make_cluster("LGL")
    client.submit(client.plan_create("/dir1/f0"))
    while not cluster.backup_of("mds1").entries:
        cluster.sim.step()
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    recovery = cluster.trace.select("recovery")
    assert recovery, "recovery never consulted the backup"
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_lgl_worker_crash_after_commit_facet_preserves_commit():
    """Once the worker's commit facet is replicated the transaction
    must survive the worker's crash — the facet is the (logless)
    durability point the coordinator counted on."""
    cluster, client = make_cluster("LGL")
    client.submit(client.plan_create("/dir1/f0"))
    while not any(
        "commit" in entry for entry in cluster.backup_of("mds2").entries.values()
    ):
        cluster.sim.step()
    cluster.crash_server("mds2")
    cluster.restart_server("mds2")
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert dentry is not None and len(inodes) > 0, (
        "replicated commit facet was lost by the worker crash"
    )


def test_lgl_burst_matches_other_protocols_semantics():
    """A contended burst commits everything exactly once."""
    cluster, client = make_cluster("LGL")
    for i in range(10):
        client.submit(client.plan_create(f"/dir1/t{i}"))
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    dentries = cluster.store_of("mds1").stable_directories.get("/dir1", {})
    assert len(dentries) == 10
    assert len(cluster.store_of("mds2").stable_inodes) == 10


def test_lgl_torture():
    from tests.faults.test_torture import assert_all_or_nothing, run_torture

    for seed in range(3):
        cluster = run_torture("LGL", seed)
        assert_all_or_nothing(cluster)
