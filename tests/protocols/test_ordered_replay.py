"""§III-D ordered replay with several outstanding transactions."""

import pytest

from tests.protocols.conftest import make_cluster


def test_1pc_coordinator_replays_all_outstanding_in_order():
    """Crash the 1PC coordinator with several transactions in flight:
    every one with a durable STARTED+REDO must be re-executed, in
    submission order, before new requests run."""
    cluster, client = make_cluster("1PC")
    for i in range(4):
        client.submit(client.plan_create(f"/dir1/f{i}"))
    # Let all four STARTED+REDO records become durable (~0.5 ms each on
    # the coordinator's device), then crash before the first commit
    # write lands.
    while (
        sum(
            1
            for r in cluster.trace.records
            if r.category == "log_durable"
            and r.actor == "mds1"
            and r.get("kind") == "REDO"
        )
        < 4
    ):
        cluster.sim.step()
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    # Submit a new request during the reboot window; it must wait.
    cluster.sim.run(
        until=cluster.sim.now + cluster.params.failure.reboot_delay + 1e-3
    )
    client.submit(client.plan_create("/dir1/late"))
    cluster.sim.run(until=cluster.sim.now + 400.0)

    assert cluster.check_invariants() == []
    listing = cluster.store_of("mds1").stable_directories["/dir1"]
    # Every redo-logged create was completed, plus the late one.
    assert set(listing) == {"f0", "f1", "f2", "f3", "late"}

    redo_actions = [
        r for r in cluster.trace.select("recovery", actor="mds1")
        if r.get("action") == "redo"
    ]
    assert len(redo_actions) == 4
    # Replay happened in the original submission (txn id) order.
    redo_txns = [r.get("txn") for r in redo_actions]
    assert redo_txns == sorted(redo_txns)
    # The late request committed only after every redo finished.
    late_outcome = [o for o in cluster.outcomes if o.path == "/dir1/late"][0]
    last_redo_done = max(
        r.time
        for r in cluster.trace.select("recovery", actor="mds1")
        if r.get("action") == "redo-committed"
    )
    assert late_outcome.replied_at >= last_redo_done


def test_2pc_coordinator_aborts_all_unprepared_outstanding(twopc_protocol):
    """The 2PC dual: outstanding transactions whose log shows only
    STARTED are aborted on reboot — nothing survives, consistently."""
    cluster, client = make_cluster(twopc_protocol)
    for i in range(3):
        client.submit(client.plan_create(f"/dir1/f{i}"))
    while (
        sum(
            1
            for r in cluster.trace.records
            if r.category == "log_durable"
            and r.actor == "mds1"
            and r.get("kind") == "STARTED"
        )
        < 3
    ):
        cluster.sim.step()
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 400.0)
    assert cluster.check_invariants() == []
    # With only STARTED durable, every transaction must have aborted.
    listing = cluster.store_of("mds1").stable_directories["/dir1"]
    inodes = cluster.store_of("mds2").stable_inodes
    assert listing == {} and inodes == {}


@pytest.mark.parametrize("n", [200])
def test_large_burst_smoke(n):
    """A deep burst well beyond the paper's 100 still completes with a
    clean namespace (stress smoke for the whole pipeline)."""
    from repro.workloads import run_burst

    result = run_burst("1PC", n=n)
    assert result.committed == n
    assert result.cluster.check_invariants() == []
    assert len(result.cluster.listdir("/dir1")) == n
