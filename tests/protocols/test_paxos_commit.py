"""Paxos Commit (PC): consensus-voted 2PC over 2F+1 acceptors."""

import pytest

from repro.storage.records import RecordKind
from tests.protocols.conftest import drain, make_cluster, run_create


def test_pc_cluster_provisions_acceptors():
    cluster, _ = make_cluster("PC")
    assert cluster.acceptor_names == ("acc1", "acc2", "acc3")
    assert set(cluster.acceptors) == {"acc1", "acc2", "acc3"}


def test_pc_commit_path_works():
    cluster, client = make_cluster("PC")
    result = run_create(cluster, client)
    assert result["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/f0") is not None


def test_pc_acceptors_force_one_ballot_per_instance():
    """Both participants' votes land as durable BALLOT records on every
    acceptor (2 instances x 3 acceptors = 6 ballots), all released
    after the outcome settles."""
    cluster, client = make_cluster("PC")
    run_create(cluster, client)
    ballots = [
        r
        for r in cluster.trace.records
        if r.category == "log_append" and r.get("kind") == str(RecordKind.BALLOT)
    ]
    assert len(ballots) == 6
    assert {r.actor for r in ballots} == {"acc1", "acc2", "acc3"}
    drain(cluster)
    for name in cluster.acceptor_names:
        assert cluster.storage.log_of(name).durable_records == ()


def test_pc_survives_one_acceptor_crash():
    """F = 1: the commit decision outlives any single acceptor."""
    cluster, client = make_cluster("PC")
    cluster.acceptors["acc2"].crash()
    result = run_create(cluster, client)
    assert result["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/f0") is not None


def test_pc_aborts_without_quorum():
    """Two crashed acceptors leave one — below quorum — so the vote
    round times out and the transaction aborts cleanly everywhere."""
    cluster, client = make_cluster("PC")
    cluster.acceptors["acc1"].crash()
    cluster.acceptors["acc3"].crash()
    result = run_create(cluster, client)
    assert result["committed"] is False
    assert "quorum" in result["reason"]
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.store_of("mds2").stable_inodes == {}


def test_pc_vote_refusal_aborts_cleanly():
    cluster, client = make_cluster("PC")
    cluster.servers["mds2"].fail_next_vote = True
    result = run_create(cluster, client)
    assert result["committed"] is False
    drain(cluster)
    assert cluster.check_invariants() == []
    for node in ("mds1", "mds2"):
        assert cluster.servers[node].locks._table == {}
        assert cluster.storage.log_of(node).durable_records == ()


def test_pc_duplicate_votes_accepted_idempotently():
    """A re-announced vote (the recovery path) must not grow a second
    ballot in the same instance."""
    cluster, client = make_cluster("PC")
    run_create(cluster, client)
    proto = cluster.servers["mds2"].protocol
    # Replay the worker's announcement as a recovering node would.
    proto._announce_vote(1, "mds1")
    cluster.sim.run(until=cluster.sim.now + 50.0)
    for name in cluster.acceptor_names:
        ballots = [
            r
            for r in cluster.storage.log_of(name).durable_records
            if r.kind == RecordKind.BALLOT and r.payload.get("instance") == "mds2"
        ]
        assert len(ballots) <= 1


@pytest.mark.parametrize("crash_at", [1e-3, 3e-3, 5e-3, 8e-3])
@pytest.mark.parametrize("victim", ["mds1", "mds2"])
def test_pc_crash_atomicity(victim, crash_at):
    cluster, client = make_cluster("PC")
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=crash_at)
    cluster.crash_server(victim)
    cluster.restart_server(victim)
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_pc_coordinator_recovery_refills_quorum_from_ballots():
    """Crash the coordinator after both votes are durable: recovery
    re-runs the voting round against the acceptors' durable ballots
    and drives the transaction to a single outcome."""
    cluster, client = make_cluster("PC")
    client.submit(client.plan_create("/dir1/f0"))
    while not any(
        r.category == "log_durable" and r.actor == "mds2" and r.get("kind") == "PREPARED"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_pc_acceptor_crash_restart_mid_burst_stays_atomic():
    cluster, client = make_cluster("PC")
    for i in range(5):
        client.submit(client.plan_create(f"/dir1/t{i}"))
    cluster.sim.run(until=3e-3)
    cluster.acceptors["acc1"].crash()
    cluster.sim.run(until=cluster.sim.now + 20e-3)
    cluster.acceptors["acc1"].restart()
    cluster.sim.run(until=cluster.sim.now + 300.0)
    assert cluster.check_invariants() == []
    dentries = cluster.store_of("mds1").stable_directories.get("/dir1", {})
    inodes = cluster.store_of("mds2").stable_inodes
    assert len(dentries) == len(inodes)


def test_pc_torture():
    from tests.faults.test_torture import assert_all_or_nothing, run_torture

    for seed in range(3):
        cluster = run_torture("PC", seed)
        assert_all_or_nothing(cluster)
