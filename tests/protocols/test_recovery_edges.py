"""Recovery edge cases: stray handlers, crash loops, crash-during-recovery."""

from repro.protocols.base import MsgKind
from repro.storage.records import RecordKind
from tests.protocols.conftest import drain, make_cluster, run_create


def test_stray_commit_for_checkpointed_txn_is_acked(twopc_protocol):
    """§II-C last case: a COMMIT for a transaction whose log was already
    checkpointed means 'committed long ago' — reply ACK."""
    cluster, client = make_cluster(twopc_protocol)
    run_create(cluster, client)
    drain(cluster)
    mark = len(cluster.trace.records)
    # Replay a COMMIT for txn 1 out of the blue.
    cluster.network.endpoint("mds1").send_to("mds2", MsgKind.COMMIT, txn_id=1)
    cluster.sim.run(until=cluster.sim.now + 1.0)
    acks = [
        r
        for r in cluster.trace.records[mark:]
        if r.category == "msg_send" and r.get("kind") == MsgKind.ACK and r.actor == "mds2"
    ]
    assert len(acks) == 1


def test_stray_prepare_with_no_state_votes_no(twopc_protocol):
    """A PREPARE for an unknown transaction must be answered with
    NOT-PREPARED (the worker lost the updates)."""
    cluster, _client = make_cluster(twopc_protocol)
    mark = len(cluster.trace.records)
    cluster.network.endpoint("mds1").send_to("mds2", MsgKind.PREPARE, txn_id=77)
    cluster.sim.run(until=cluster.sim.now + 1.0)
    votes = [
        r
        for r in cluster.trace.records[mark:]
        if r.category == "msg_send" and r.get("kind") == MsgKind.NOT_PREPARED
    ]
    assert len(votes) == 1


def test_stray_ack_req_answered_when_log_empty():
    """1PC: a worker's ACK_REQ for a checkpointed transaction gets an
    ACK (absence of coordinator state implies the commit finished)."""
    cluster, client = make_cluster("1PC")
    run_create(cluster, client)
    drain(cluster)
    mark = len(cluster.trace.records)
    cluster.network.endpoint("mds2").send_to("mds1", MsgKind.ACK_REQ, txn_id=1)
    cluster.sim.run(until=cluster.sim.now + 1.0)
    acks = [
        r
        for r in cluster.trace.records[mark:]
        if r.category == "msg_send" and r.get("kind") == MsgKind.ACK and r.actor == "mds1"
    ]
    assert len(acks) == 1


def test_decision_req_answered_from_aborted_log(twopc_protocol):
    """An ABORTED record that could not be GC'd (unacknowledged abort)
    must answer later decision queries with ABORT."""
    cluster, client = make_cluster(twopc_protocol)
    # Abort a transaction while the worker is partitioned away so the
    # abort can never be acknowledged.
    cluster.partition({"mds2"})
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=cluster.sim.now + 30.0)
    outcome = cluster.outcomes[0]
    assert not outcome.committed
    cluster.heal_partition()
    state = cluster.storage.log_of("mds1").last_state(outcome.txn_id)
    if twopc_protocol == "PrA":  # pragma: no cover - PrA presumes aborts
        return
    assert state == RecordKind.ABORTED
    mark = len(cluster.trace.records)
    cluster.network.endpoint("mds2").send_to(
        "mds1", MsgKind.DECISION_REQ, txn_id=outcome.txn_id
    )
    cluster.sim.run(until=cluster.sim.now + 1.0)
    decisions = [
        r
        for r in cluster.trace.records[mark:]
        if r.category == "msg_send" and r.get("kind") == MsgKind.ABORT and r.actor == "mds1"
    ]
    assert len(decisions) == 1


def test_crash_loop_worker(protocol):
    """Three consecutive worker crash/restart cycles during one
    transaction: the system still converges to a consistent state."""
    cluster, client = make_cluster(protocol)
    client.submit(client.plan_create("/dir1/f0"))
    at = 1e-3
    for _round in range(3):
        cluster.sim.run(until=cluster.sim.now + at)
        if not cluster.servers["mds2"].crashed:
            cluster.crash_server("mds2")
            cluster.restart_server("mds2")
        at = 0.3
    cluster.sim.run(until=cluster.sim.now + 400.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_crash_during_recovery(protocol):
    """The coordinator crashes again while its reboot recovery is in
    flight; the second recovery must still converge."""
    cluster, client = make_cluster(protocol)
    client.submit(client.plan_create("/dir1/f0"))
    cluster.sim.run(until=3e-3)
    cluster.crash_server("mds1")
    cluster.restart_server("mds1", after=0.05)
    # Second crash shortly after the restart, likely mid-recovery.
    cluster.sim.run(until=cluster.sim.now + 0.055)
    if not cluster.servers["mds1"].crashed:
        cluster.crash_server("mds1")
        cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 400.0)
    assert cluster.check_invariants() == []
    dentry = cluster.store_of("mds1").stable_directories.get("/dir1", {}).get("f0")
    inodes = cluster.store_of("mds2").stable_inodes
    assert (dentry is not None) == (len(inodes) > 0)


def test_recovery_is_idempotent_when_nothing_pending(protocol):
    """Restarting a quiescent server finds nothing to recover and
    serves immediately."""
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    cluster.crash_server("mds1")
    cluster.restart_server("mds1", after=0.0)
    cluster.sim.run(until=cluster.sim.now + 5.0)
    assert not cluster.servers["mds1"].recovering
    assert cluster.trace.count("recovery") == 0
    done = cluster.sim.process(client.create("/dir1/after"), name="after")
    cluster.sim.run(until=done)
    assert done.value["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
