"""Golden-trace regression tests.

A full trace of one distributed CREATE is stored per protocol under
``tests/golden/``.  Any change to protocol behaviour — an extra
message, a reordered write, a shifted timestamp — shows up as a trace
diff.  Regenerate deliberately with::

    python - <<'EOF'
    from repro.analysis.traceio import dump_trace
    from tests.protocols.conftest import make_cluster, run_create, drain
    for proto in ("PrN", "1PC"):
        cluster, client = make_cluster(proto)
        run_create(cluster, client)
        drain(cluster)
        dump_trace(cluster.trace, f"tests/golden/{proto.lower()}_create.jsonl")
    EOF
"""

from pathlib import Path

import pytest

from repro.analysis.traceio import trace_to_string
from tests.protocols.conftest import drain, make_cluster, run_create

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


@pytest.mark.parametrize("protocol", ["PrN", "1PC"])
def test_trace_matches_golden(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    current = trace_to_string(cluster.trace)
    golden = (GOLDEN_DIR / f"{protocol.lower()}_create.jsonl").read_text()
    assert current == golden, (
        f"{protocol} trace diverged from the golden trace — if the "
        "change is intentional, regenerate tests/golden/ (see module "
        "docstring)"
    )


def test_golden_traces_exist_and_are_nontrivial():
    for name in ("prn_create.jsonl", "1pc_create.jsonl"):
        path = GOLDEN_DIR / name
        assert path.exists()
        assert len(path.read_text().splitlines()) > 20
