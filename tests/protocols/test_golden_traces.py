"""Golden-trace regression tests.

A full trace of one distributed CREATE is stored per protocol under
``tests/golden/``.  Any change to protocol behaviour — an extra
message, a reordered write, a shifted timestamp — shows up as a trace
diff.  Regenerate deliberately with::

    python - <<'EOF'
    from repro.analysis.traceio import dump_trace
    from tests.protocols.conftest import make_cluster, run_create, drain
    for proto in ("PrN", "1PC"):
        cluster, client = make_cluster(proto)
        run_create(cluster, client)
        drain(cluster)
        dump_trace(cluster.trace, f"tests/golden/{proto.lower()}_create.jsonl")
    EOF
"""

from pathlib import Path

import pytest

from repro.analysis.traceio import trace_to_string
from tests.protocols.conftest import drain, make_cluster, run_create

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


@pytest.mark.parametrize("protocol", ["PrN", "1PC"])
def test_trace_matches_golden(protocol):
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    current = trace_to_string(cluster.trace)
    golden = (GOLDEN_DIR / f"{protocol.lower()}_create.jsonl").read_text()
    assert current == golden, (
        f"{protocol} trace diverged from the golden trace — if the "
        "change is intentional, regenerate tests/golden/ (see module "
        "docstring)"
    )


def test_golden_traces_exist_and_are_nontrivial():
    for name in ("prn_create.jsonl", "1pc_create.jsonl"):
        path = GOLDEN_DIR / name
        assert path.exists()
        assert len(path.read_text().splitlines()) > 20


# -- Figure-6 cell documents --------------------------------------------------
#
# One full executor cell (100-create burst, seed 0) per registered
# protocol, serialized canonically and byte-compared against captured
# documents.  This pins the end-to-end stack — scheduler, network,
# WAL/replicas/acceptors, locks, protocol — not just one CREATE's
# trace.  A protocol registered without a golden file fails here:
# run the snippet below to capture its cell.  Regenerate deliberately
# with::
#
#     PYTHONPATH=src python - <<'EOF'
#     import json
#     from repro.exec.runners import execute_spec
#     from repro.exec.spec import RunSpec
#     from repro.protocols.registry import default_protocols
#     for proto in default_protocols():
#         spec = RunSpec(kind="burst", protocol=proto, n=100, seed=0,
#                        point="golden-figure6")
#         cell = execute_spec(spec)
#         doc = json.dumps(cell.to_dict(), sort_keys=True,
#                          separators=(",", ":")) + "\n"
#         open(f"tests/golden/figure6_cell_{proto.lower()}.json", "w").write(doc)
#     EOF

from repro.protocols.registry import default_protocols  # noqa: E402


@pytest.mark.parametrize("protocol", default_protocols())
def test_figure6_cell_matches_golden(protocol):
    import json

    from repro.exec.runners import execute_spec
    from repro.exec.spec import RunSpec

    spec = RunSpec(kind="burst", protocol=protocol, n=100, seed=0, point="golden-figure6")
    cell = execute_spec(spec)
    current = json.dumps(cell.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
    golden = (GOLDEN_DIR / f"figure6_cell_{protocol.lower()}.json").read_text()
    assert current == golden, (
        f"{protocol} Figure-6 cell document diverged from the golden "
        "copy — a kernel/hot-path change perturbed event order or "
        "virtual timestamps; if intentional, regenerate (see comment "
        "above)"
    )


def test_figure6_cell_goldens_are_nontrivial():
    import json

    for proto in default_protocols():
        doc = json.loads(
            (GOLDEN_DIR / f"figure6_cell_{proto.lower()}.json").read_text()
        )
        assert doc["committed"] == 100
        assert doc["throughput"] > 0
