"""Isolation: conflicting concurrent operations, cross-server lock
ordering and the timeout-based deadlock breaking of §II-B."""

from repro import Cluster
from repro.fs import ObjectId
from tests.protocols.conftest import drain, make_cluster


def test_same_name_concurrent_creates_one_winner(protocol):
    """Two clients race to create the same path: exactly one commits,
    the loser gets a clean EEXIST abort."""
    cluster, client_a = make_cluster(protocol)
    client_b = cluster.new_client()
    client_a.submit(client_a.plan_create("/dir1/race"))
    client_b.submit(client_b.plan_create("/dir1/race"))
    while len(cluster.outcomes) < 2:
        cluster.sim.step()
    drain(cluster)
    committed = [o for o in cluster.outcomes if o.committed]
    aborted = [o for o in cluster.outcomes if not o.committed]
    assert len(committed) == 1 and len(aborted) == 1
    assert "exists" in aborted[0].reason
    assert cluster.check_invariants() == []
    # Exactly one inode materialised.
    assert len(cluster.store_of("mds2").stable_inodes) == 1


def test_create_delete_race_is_serializable(protocol):
    """Delete racing the create of the same name: every interleaving
    leaves consistent state and the outcomes compose serially."""
    cluster, client = make_cluster(protocol)

    def creator(sim):
        result = yield from client.create("/dir1/x")
        return result["committed"]

    p1 = cluster.sim.process(creator(cluster.sim))
    cluster.sim.run(until=p1)
    # Now race a second create with a delete.
    client.submit(client.plan_create("/dir1/y"))
    client.submit(client.plan_delete("/dir1/x"))
    while len(cluster.outcomes) < 3:
        cluster.sim.step()
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/x") is None
    assert cluster.lookup("/dir1/y") is not None


class CrossPlacement:
    """/a on mds1, /b on mds2, inodes colocated with their directory
    so that cross-directory renames lock directories on both servers."""

    def place(self, obj: ObjectId) -> str:
        if obj.kind == "dir":
            return "mds1" if obj.key.startswith("/a") or obj.key == "/" else "mds2"
        return self._ino_homes.get(obj.key, "mds1")

    def __init__(self):
        self._ino_homes = {}

    def hint_inode_path(self, ino, path):
        self._ino_homes[str(ino)] = "mds1" if path.startswith("/a") else "mds2"

    def pin(self, obj, node):
        pass


def test_cross_rename_deadlock_broken_by_timeout():
    """Two renames in opposite directions (a->b and b->a) acquire the
    two directory locks in opposite orders — a classic deadlock.  The
    §II-B timeout must break it: at least one rename completes, state
    stays consistent."""
    from dataclasses import replace

    from repro.config import SimulationParams

    base = SimulationParams.paper_defaults()
    # Short lock timeout so the deadlock resolves quickly.
    params = base.with_(failure=replace(base.failure, lock_timeout=0.25))
    cluster = Cluster(
        protocol="PrN",
        server_names=["mds1", "mds2"],
        placement=CrossPlacement(),
        params=params,
    )
    cluster.mkdir("/a")
    cluster.mkdir("/b")
    client = cluster.new_client()

    def setup(sim):
        r1 = yield from client.run(client.plan_create("/a/x"))
        r2 = yield from client.run(client.plan_create("/b/y"))
        assert r1["committed"] and r2["committed"]

    p = cluster.sim.process(setup(cluster.sim))
    cluster.sim.run(until=p)
    cluster.sim.run(until=cluster.sim.now + 30.0)

    client.submit(client.plan_rename("/a/x", "/b/x2", touch_inode=False))
    client.submit(client.plan_rename("/b/y", "/a/y2", touch_inode=False))
    deadline = cluster.sim.now + 300.0
    while len(cluster.outcomes) < 4 and cluster.sim.peek() < deadline:
        cluster.sim.step()
    cluster.sim.run(until=cluster.sim.now + 120.0)
    renames = [o for o in cluster.outcomes if o.op == "RENAME"]
    # The deadlock was broken: both renames reached a decision instead
    # of blocking forever.  (Symmetric timeouts may abort both — the
    # paper's design leaves the retry to the client.)
    assert len(renames) == 2
    assert cluster.check_invariants() == []
    aborted = [o for o in renames if not o.committed]
    assert all("lock timeout" in o.reason for o in aborted)

    # Clients retry the aborted renames one at a time: all succeed.
    def retry(sim):
        if cluster.lookup("/a/x") is not None:
            result = yield from client.rename("/a/x", "/b/x2")
            assert result["committed"]
        if cluster.lookup("/b/y") is not None:
            result = yield from client.rename("/b/y", "/a/y2")
            assert result["committed"]

    p = cluster.sim.process(retry(cluster.sim))
    cluster.sim.run(until=p)
    cluster.sim.run(until=cluster.sim.now + 120.0)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/b/x2") is not None
    assert cluster.lookup("/a/y2") is not None
    assert cluster.lookup("/a/x") is None and cluster.lookup("/b/y") is None


def test_lock_timeout_produces_clean_abort():
    """A transaction whose worker cannot get its lock within the lock
    timeout aborts cleanly instead of blocking forever."""
    from dataclasses import replace

    from repro.config import SimulationParams

    base = SimulationParams.paper_defaults()
    params = base.with_(failure=replace(base.failure, lock_timeout=0.2))
    cluster, client = make_cluster("1PC", params=params)
    # A long-running hog holds the worker-side inode lock...  there is
    # no external API for that, so hold the *directory* lock via a
    # fake transaction instead.
    mgr = cluster.servers["mds1"].locks

    def hog(sim):
        from repro.fs import ObjectId
        from repro.locks import LockMode

        yield from mgr.acquire("hog", ObjectId.directory("/dir1"), LockMode.EXCLUSIVE)
        yield sim.timeout(2.0)
        mgr.release_all("hog")

    cluster.sim.process(hog(cluster.sim))
    cluster.sim.run(until=0.01)
    client.submit(client.plan_create("/dir1/blocked"))
    while len(cluster.outcomes) < 1:
        cluster.sim.step()
    outcome = cluster.outcomes[0]
    assert not outcome.committed
    assert "lock timeout" in outcome.reason
    drain(cluster)
    assert cluster.check_invariants() == []
