"""The plug-in contract: register a protocol, get the whole harness.

A toy protocol registered through :func:`temporary_protocol` must show
up in every experiment grid, the Table-I renderer, and the CLI listing
with **zero harness edits** — that is the tentpole property of the
registry.  The toy engine is a plain PrN subclass under a new name, so
every grid cell it lands in also executes successfully.
"""

import json

import pytest

from repro.protocols.prn import PresumeNothingProtocol
from repro.protocols.registry import (
    KNOWN_CAPABILITIES,
    PROTOCOLS,
    ProtocolSpec,
    default_protocols,
    get_spec,
    register_protocol,
    specs,
    temporary_protocol,
    unregister,
)


class ToyProtocol(PresumeNothingProtocol):
    """A PrN clone under a different registry name."""

    name = "TOY"


def toy_spec(**overrides):
    defaults = dict(
        name="TOY",
        engine=ToyProtocol,
        summary="toy protocol for plug-in tests",
        log_records=("STARTED", "PREPARED", "COMMITTED", "ABORTED", "ENDED"),
    )
    defaults.update(overrides)
    return ProtocolSpec(**defaults)


def test_toy_protocol_appears_in_every_grid():
    from repro.exec import (
        abort_rate_grid,
        burst_size_grid,
        disk_bandwidth_grid,
        figure6_grid,
        network_latency_grid,
    )

    with temporary_protocol(toy_spec()):
        assert default_protocols()[-1] == "TOY"
        assert {s.protocol for s in figure6_grid(n=4)} >= {"TOY"}
        assert {s.protocol for s in network_latency_grid([1e-3], n=4)} >= {"TOY"}
        assert {s.protocol for s in disk_bandwidth_grid([1e5], n=4)} >= {"TOY"}
        assert {s.protocol for s in burst_size_grid([2])} >= {"TOY"}
        assert {s.protocol for s in abort_rate_grid([0.0], n=4)} >= {"TOY"}
    # The registration does not leak.
    assert "TOY" not in default_protocols()
    for grid in (figure6_grid(n=4), burst_size_grid([2])):
        assert "TOY" not in {s.protocol for s in grid}


def test_toy_protocol_cells_actually_run():
    """The grid enumeration is not cosmetic: the executor can run a
    toy cell end to end through the registered engine class."""
    from repro.exec import execute_spec, figure6_grid

    with temporary_protocol(toy_spec()):
        spec = [s for s in figure6_grid(n=3) if s.protocol == "TOY"][0]
        cell = execute_spec(spec)
        assert cell.committed == 3


def test_toy_protocol_appears_in_table1():
    from repro.harness.table1 import run_table1

    with temporary_protocol(toy_spec(table1_row=(5, 1, 4, 1, 4, 4))):
        text = run_table1(measured=True)
    assert "TOY" in text


def test_toy_protocol_appears_in_cli_listing(capsys):
    from repro.cli import main

    with temporary_protocol(toy_spec()):
        assert main(["protocols"]) == 0
        assert "TOY" in capsys.readouterr().out
        assert main(["protocols", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc[-1]["name"] == "TOY"
        assert doc[-1]["engine"] == "ToyProtocol"


def test_toy_protocol_passes_conformance():
    from repro.protocols.conformance import check_protocol

    with temporary_protocol(toy_spec()):
        report = check_protocol("TOY")
    assert report.ok, report.failures


def test_registry_order_paper_protocols_lead():
    names = default_protocols()
    assert names[:4] == ("PrN", "PrC", "EP", "1PC")
    assert set(names) == {"PrN", "PrC", "EP", "1PC", "PrA", "PC", "LGL", "1PC-N"}


def test_specs_expose_reference_points():
    assert get_spec("1PC").paper_figure6 == 24.0
    assert get_spec("PC").table1_row == (11, 1, 5, 1, 15, 15)
    assert get_spec("LGL").table1_row == (0, 0, 0, 0, 7, 4)
    for spec in specs():
        assert spec.engine is PROTOCOLS[spec.name]
        assert spec.citation or spec.paper_figure6 is not None


def test_spec_validation_rejects_bad_registrations():
    with pytest.raises(ValueError, match="does not match engine name"):
        ProtocolSpec(name="NOPE", engine=ToyProtocol)
    with pytest.raises(ValueError, match="unknown capability"):
        toy_spec(capabilities=frozenset({"teleportation"}))
    with pytest.raises(ValueError, match="six entries"):
        toy_spec(table1_row=(1, 2, 3))
    assert "teleportation" not in KNOWN_CAPABILITIES


def test_unregister_unknown_raises():
    with pytest.raises(KeyError):
        unregister("NOPE")


def test_decorator_form_derives_minimal_spec():
    class Toy2(PresumeNothingProtocol):
        """One-liner summary."""

        name = "TOY2"

    try:
        register_protocol(Toy2)
        spec = get_spec("TOY2")
        assert spec.engine is Toy2
        assert spec.summary == "One-liner summary."
        assert spec.order is None  # unordered specs append after paper rows
        assert default_protocols()[-1] == "TOY2"
    finally:
        unregister("TOY2")
