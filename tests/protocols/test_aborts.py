"""Abort paths: worker refusals, conflicting updates, lock timeouts."""

from repro.storage.records import RecordKind
from tests.protocols.conftest import drain, make_cluster, run_create


def test_worker_vote_refusal_aborts(protocol):
    cluster, client = make_cluster(protocol)
    cluster.servers["mds2"].fail_next_vote = True
    result = run_create(cluster, client)
    assert result["committed"] is False
    drain(cluster)
    assert cluster.check_invariants() == []
    # Nothing was created anywhere.
    assert cluster.lookup("/dir1/f0") is None
    assert cluster.store_of("mds2").stable_inodes == {}


def test_abort_then_retry_succeeds(protocol):
    cluster, client = make_cluster(protocol)
    cluster.servers["mds2"].fail_next_vote = True

    def scenario(sim):
        first = yield from client.create("/dir1/f0")
        second = yield from client.create("/dir1/f0")
        return first["committed"], second["committed"]

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert p.value == (False, True)
    drain(cluster)
    assert cluster.check_invariants() == []


def test_abort_releases_directory_lock(protocol):
    cluster, client = make_cluster(protocol)
    cluster.servers["mds2"].fail_next_vote = True
    run_create(cluster, client)
    drain(cluster)
    assert cluster.servers["mds1"].locks.holders(("dir", "/dir1")) == {}
    mgr = cluster.servers["mds1"].locks
    assert mgr._table == {}


def test_worker_conflict_aborts_cleanly(protocol):
    """The worker rejects updates that violate its local state (here a
    DecLink on a non-existent inode)."""
    from repro.fs import DecLink, OpPlan, RemoveDentry

    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    # Hand-build a DELETE plan with a bogus inode number.
    plan = OpPlan(
        op="DELETE",
        path="/dir1/f0",
        updates={
            "mds1": [RemoveDentry("/dir1", "f0")],
            "mds2": [DecLink(999_999)],
        },
        coordinator="mds1",
    )
    done = cluster.sim.process(client.run(plan), name="bad-delete")
    cluster.sim.run(until=done)
    assert done.value["committed"] is False
    drain(cluster)
    # The file still exists, consistently.
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/f0") is not None


def test_abort_writes_aborted_record(protocol):
    cluster, client = make_cluster(protocol)
    cluster.servers["mds2"].fail_next_vote = True
    run_create(cluster, client)
    drain(cluster)
    aborted = cluster.trace.select("log_append", kind=str(RecordKind.ABORTED))
    assert any(r.actor == "mds1" for r in aborted)


def test_prc_abort_is_acknowledged(twopc_protocol):
    """PrC/PrN/EP abort cases all use the full acknowledged abort (the
    presumption never covers aborts)."""
    cluster, client = make_cluster(twopc_protocol)
    cluster.servers["mds2"].fail_next_vote = True
    run_create(cluster, client)
    drain(cluster)
    # Logs fully collected on both sides afterwards.
    assert cluster.storage.log_of("mds1").durable_records == ()
    assert cluster.storage.log_of("mds2").durable_records == ()


def test_coordinator_local_conflict_aborts_before_worker(protocol):
    """An EEXIST at the coordinator aborts without touching the worker."""
    cluster, client = make_cluster(protocol)
    run_create(cluster, client)
    drain(cluster)
    before = len(cluster.store_of("mds2").stable_inodes)
    done = cluster.sim.process(client.run(client.plan_create("/dir1/f0")), name="dup")
    cluster.sim.run(until=done)
    assert done.value["committed"] is False
    drain(cluster)
    assert len(cluster.store_of("mds2").stable_inodes) == before
    assert cluster.check_invariants() == []


def test_many_aborts_do_not_leak_sessions(protocol):
    cluster, client = make_cluster(protocol)
    for i in range(5):
        cluster.servers["mds2"].fail_next_vote = True
        result = run_create(cluster, client)
        assert result["committed"] is False
    drain(cluster)
    assert cluster.servers["mds1"]._sessions == {}
    assert cluster.servers["mds2"]._sessions == {}
    assert cluster.check_invariants() == []
