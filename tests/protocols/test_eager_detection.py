"""Heartbeat-accelerated failure handling in the 1PC coordinator."""

from repro import Cluster
from repro.harness.scenarios import ForcedDistributedPlacement


def heartbeat_cluster(heartbeats):
    cluster = Cluster(
        protocol="1PC",
        server_names=["mds1", "mds2"],
        placement=ForcedDistributedPlacement("mds1", "mds2"),
        heartbeats=heartbeats,
    )
    cluster.mkdir("/dir1")
    return cluster, cluster.new_client()


def crash_worker_and_settle(cluster, client):
    """Crash the worker the instant the request reaches it; return the
    (crash_time, abort_reply_time)."""
    # Warm the failure detector.
    cluster.sim.run(until=0.2)
    client.submit(client.plan_create("/dir1/f0"))
    while not any(
        r.category == "msg_recv" and r.actor == "mds2" and r.get("kind") == "UPDATE_REQ"
        for r in cluster.trace.records
    ):
        cluster.sim.step()
    crash_time = cluster.sim.now
    cluster.crash_server("mds2")
    while not cluster.outcomes:
        cluster.sim.step()
    return crash_time, cluster.outcomes[0].replied_at


def test_heartbeats_accelerate_worker_failure_handling():
    with_hb_cluster, c1 = heartbeat_cluster(True)
    t_crash, t_reply = crash_worker_and_settle(with_hb_cluster, c1)
    with_hb = t_reply - t_crash

    without_hb_cluster, c2 = heartbeat_cluster(False)
    t_crash2, t_reply2 = crash_worker_and_settle(without_hb_cluster, c2)
    without_hb = t_reply2 - t_crash2

    # Suspicion fires after ~3 missed 10 ms heartbeats + fencing; the
    # plain path waits the full 1 s reply timeout + fencing.
    assert with_hb < without_hb / 2
    assert with_hb_cluster.trace.count("early_suspicion") == 1
    assert without_hb_cluster.trace.count("early_suspicion") == 0
    # Both reach the same (abort) decision consistently.
    for cluster in (with_hb_cluster, without_hb_cluster):
        cluster.sim.run(until=cluster.sim.now + 150.0)
        assert cluster.check_invariants() == []
        assert not cluster.outcomes[0].committed


def test_eager_detection_never_fires_for_healthy_worker():
    cluster, client = heartbeat_cluster(True)

    def scenario(sim):
        for i in range(3):
            result = yield from client.create(f"/dir1/f{i}")
            assert result["committed"]

    p = cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=p)
    assert cluster.trace.count("early_suspicion") == 0
    assert cluster.trace.count("worker_probe") == 0
    cluster.sim.run(until=cluster.sim.now + 30.0)
    assert cluster.check_invariants() == []


def test_suspicion_during_partition_still_safe():
    """A partition triggers suspicion; fencing + shared-log read keep
    the outcome correct even though the worker is alive."""
    cluster, client = heartbeat_cluster(True)
    cluster.sim.run(until=0.2)
    client.submit(client.plan_create("/dir1/f0"))
    # Partition immediately: the UPDATE_REQ never arrives.
    cluster.partition({"mds2"})
    cluster.sim.run(until=cluster.sim.now + 10.0)
    cluster.heal_partition()
    cluster.sim.run(until=cluster.sim.now + 150.0)
    assert cluster.check_invariants() == []
    assert len(cluster.outcomes) == 1 and not cluster.outcomes[0].committed
    probes = cluster.trace.select("worker_probe")
    assert len(probes) == 1 and probes[0].get("committed") is False
