"""Transactional MKDIR / RMDIR across the protocols."""

from repro.fs import FileType
from tests.protocols.conftest import drain, make_cluster


def run_op(cluster, gen):
    p = cluster.sim.process(gen)
    cluster.sim.run(until=p)
    return p.value


def test_mkdir_commits_and_is_usable(protocol):
    cluster, client = make_cluster(protocol)

    def scenario(sim):
        r1 = yield from client.mkdir("/dir1/sub")
        # The new directory is immediately usable for creates.
        r2 = yield from client.create("/dir1/sub/file")
        return r1, r2

    r1, r2 = run_op(cluster, scenario(cluster.sim))
    assert r1["committed"] and r2["committed"]
    drain(cluster)
    assert cluster.check_invariants() == []
    # Directory inode is typed as a directory.
    ino = cluster.lookup("/dir1/sub")
    # Both the dir table and its inode live at the dir's MDS (mds1 for
    # dir objects under ForcedDistributedPlacement).
    node = cluster.store_of("mds1")
    assert node.has_dir("/dir1/sub")
    assert node.inode(ino).ftype is FileType.DIRECTORY
    assert cluster.lookup("/dir1/sub/file") is not None


def test_rmdir_empty_directory(protocol):
    cluster, client = make_cluster(protocol)

    def scenario(sim):
        yield from client.mkdir("/dir1/sub")
        result = yield from client.rmdir("/dir1/sub")
        return result

    result = run_op(cluster, scenario(cluster.sim))
    assert result["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.lookup("/dir1/sub") is None
    assert not cluster.store_of("mds1").has_dir("/dir1/sub")


def test_rmdir_nonempty_aborts_with_enotempty(protocol):
    cluster, client = make_cluster(protocol)

    def scenario(sim):
        yield from client.mkdir("/dir1/sub")
        yield from client.create("/dir1/sub/file")
        result = yield from client.rmdir("/dir1/sub")
        return result

    result = run_op(cluster, scenario(cluster.sim))
    assert result["committed"] is False
    assert "not empty" in result["reason"]
    drain(cluster)
    assert cluster.check_invariants() == []
    # Directory and its content intact.
    assert cluster.lookup("/dir1/sub/file") is not None


def test_rmdir_then_recreate(protocol):
    cluster, client = make_cluster(protocol)

    def scenario(sim):
        yield from client.mkdir("/dir1/sub")
        yield from client.rmdir("/dir1/sub")
        result = yield from client.mkdir("/dir1/sub")
        return result

    result = run_op(cluster, scenario(cluster.sim))
    assert result["committed"] is True
    drain(cluster)
    assert cluster.check_invariants() == []


def test_nested_tree_build_and_teardown():
    cluster, client = make_cluster("1PC")

    def scenario(sim):
        for d in ("/dir1/a", "/dir1/a/b", "/dir1/a/b/c"):
            result = yield from client.mkdir(d)
            assert result["committed"], d
        for i in range(3):
            result = yield from client.create(f"/dir1/a/b/c/f{i}")
            assert result["committed"]
        # Teardown bottom-up.
        for i in range(3):
            yield from client.delete(f"/dir1/a/b/c/f{i}")
        for d in ("/dir1/a/b/c", "/dir1/a/b", "/dir1/a"):
            result = yield from client.rmdir(d)
            assert result["committed"], d

    run_op(cluster, scenario(cluster.sim))
    drain(cluster)
    assert cluster.check_invariants() == []
    assert cluster.listdir("/dir1") == {}


def test_mkdir_crash_recovery_atomic(protocol):
    """Crash the directory-home MDS mid-MKDIR: dentry and dir table
    must both exist or both be absent after recovery."""
    cluster, client = make_cluster(protocol)
    client.submit(client.plan_mkdir("/dir1/sub"))
    cluster.sim.run(until=2e-3)
    cluster.crash_server("mds1")
    cluster.restart_server("mds1")
    cluster.sim.run(until=cluster.sim.now + 200.0)
    assert cluster.check_invariants() == []
    # Under ForcedDistributedPlacement both the parent and the new dir
    # live on mds1, so MKDIR is actually local there; what matters is
    # consistency between dentry and table.
    store = cluster.store_of("mds1")
    dentry = store.stable_directories.get("/dir1", {}).get("sub")
    table = "/dir1/sub" in store.stable_directories
    assert (dentry is not None) == table


def test_concurrent_create_blocks_rmdir():
    """A create inside the directory and an rmdir of it serialise on
    the directory's lock; whichever commits first wins and the other
    sees consistent state."""
    cluster, client = make_cluster("1PC")

    def setup(sim):
        result = yield from client.mkdir("/dir1/sub")
        assert result["committed"]

    run_op(cluster, setup(cluster.sim))
    # Fire both concurrently.
    client.submit(client.plan_create("/dir1/sub/file"))
    client.submit(client.plan_rmdir("/dir1/sub"))
    while len(cluster.outcomes) < 3:  # mkdir + the two above
        cluster.sim.step()
    drain(cluster)
    assert cluster.check_invariants() == []
    created = cluster.lookup("/dir1/sub/file") is not None
    removed = cluster.lookup("/dir1/sub") is None
    # Exactly one of the conflicting operations succeeded.
    assert created != removed
