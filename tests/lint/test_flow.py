"""The whole-program layer: call graph, CFG facts, and FENCE003.

The paired fence_flow fixtures are the proof obligation from the
issue: FENCE002 alone provably misses the fence-in-helper /
read-in-helper split, and FENCE003 catches it with caller context.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint import run_lint
from repro.lint.context import FileContext
from repro.lint.flow.callgraph import build_call_graph
from repro.lint.flow.dataflow import build_cfg
from repro.lint.flow.project import ProjectContext
from repro.lint.flow.summaries import compute_fence_summaries
from repro.lint.registry import select_rules

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _context(source: str, path: str = "src/repro/core/snippet.py") -> FileContext:
    text = textwrap.dedent(source)
    return FileContext(Path(path), text, ast.parse(text))


def _project(*sources: str) -> ProjectContext:
    return ProjectContext(
        [
            _context(source, f"src/repro/core/snippet{index}.py")
            for index, source in enumerate(sources)
        ]
    )


# -- call graph ---------------------------------------------------------------


def test_call_graph_resolves_module_self_and_super_calls():
    project = _project(
        """
        def helper():
            return 1

        class Base:
            def step(self):
                return helper()

        class Derived(Base):
            def step(self):
                return super().step()

            def run(self):
                return self.step()
        """
    )
    graph = build_call_graph(project)
    module = "repro.core.snippet0"
    callees = {
        caller[1]: {callee[1] for callee in graph.callees(caller)}
        for caller in project.functions
    }
    assert callees["Base.step"] == {"helper"}
    assert callees["Derived.step"] == {"Base.step"}
    assert callees["Derived.run"] == {"Derived.step"}
    assert all(key[0] == module for key in project.functions)


# -- CFG ----------------------------------------------------------------------


def test_cfg_dominance_and_yield_paths():
    source = textwrap.dedent(
        """
        def proc(sim, flag):
            a = 1
            if flag:
                yield sim.timeout(1.0)
            b = a + 1
            return b
        """
    )
    fn = ast.parse(source).body[0]
    cfg = build_cfg(fn)
    nodes = {type(node.stmt).__name__: node.index for node in cfg.nodes}
    # `a = 1` dominates `b = a + 1`; the yield (inside the if) does not.
    assign_nodes = [
        node.index for node in cfg.nodes if isinstance(node.stmt, ast.Assign)
    ]
    first, last = min(assign_nodes), max(assign_nodes)
    assert cfg.dominated_by(last, {first})
    yield_node = nodes["Expr"]
    assert not cfg.dominated_by(last, {yield_node})
    # One path a -> b crosses the yield, so the relation holds.
    assert cfg.path_crosses_yield(first, last, set())


def test_cfg_yield_path_respects_blocked_nodes():
    source = textwrap.dedent(
        """
        def proc(sim):
            a = 1
            yield sim.timeout(1.0)
            a = 2
            consume(a)
        """
    )
    fn = ast.parse(source).body[0]
    cfg = build_cfg(fn)
    assigns = [n.index for n in cfg.nodes if isinstance(n.stmt, ast.Assign)]
    use = max(n.index for n in cfg.nodes if isinstance(n.stmt, ast.Expr))
    # Blocking the redefinition kills the only yield-crossing path.
    assert cfg.path_crosses_yield(assigns[0], use, set())
    assert not cfg.path_crosses_yield(assigns[0], use, {assigns[1]})


# -- fence summaries ----------------------------------------------------------


def test_fence_summaries_propagate_through_helpers():
    project = _project(
        """
        def _ensure_fenced(cluster, worker):
            yield from cluster.fencing_driver.fence(worker)

        def _pull(cluster, worker):
            records = yield from cluster.storage.read_remote_log(worker)
            return records

        def covered(cluster, worker):
            yield from _ensure_fenced(cluster, worker)
            yield from _pull(cluster, worker)

        def exposed(cluster, worker):
            yield from _pull(cluster, worker)
        """
    )
    graph = build_call_graph(project)
    summaries = compute_fence_summaries(project, graph)
    module = "repro.core.snippet0"
    assert (module, "_ensure_fenced") in summaries.establishes
    escaping = {key[1] for key in summaries.escaping}
    assert "_pull" in escaping  # the direct, pragma-able read
    assert "exposed" in escaping  # the caller FENCE003 reports
    assert "covered" not in escaping


# -- FENCE003 end-to-end ------------------------------------------------------


def test_fence003_catches_read_hidden_in_helper():
    report = run_lint(
        [FIXTURES / "fence_flow_bad.py"], rules=select_rules(["FENCE"])
    )
    assert [f.rule for f in report.findings] == ["FENCE003"]
    finding = report.findings[0]
    assert "unfenced_sweep" in finding.message
    assert "_pull_records()" in finding.message  # helper chain context


def test_fence002_alone_provably_misses_the_split():
    # The same fixture under FENCE002 only: zero findings — the helper
    # pragma suppresses the in-helper read and the caller has no read.
    report = run_lint(
        [FIXTURES / "fence_flow_bad.py"], rules=select_rules(["FENCE002"])
    )
    assert report.findings == []


def test_fence_flow_good_fixture_is_clean():
    # Fence-in-helper satisfies both FENCE002 (same file, no pragma on
    # direct_probe's read) and FENCE003 (helper summaries).
    report = run_lint(
        [FIXTURES / "fence_flow_good.py"], rules=select_rules(["FENCE"])
    )
    assert report.findings == []


def test_fence003_is_quiet_on_the_real_tree():
    report = run_lint(
        [ROOT / "src" / "repro"], rules=select_rules(["FENCE003"]), root=ROOT
    )
    assert report.findings == []
