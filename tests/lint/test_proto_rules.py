"""PROTO001-003: registry-driven spec-vs-code conformance.

The run always lints ``src/repro`` *plus* the plug-in fixture, so a
single report proves both halves of the acceptance criterion: every
real registered protocol validates clean, and each deliberately broken
``temporary_protocol`` plug-in produces exactly its one finding.
"""

from __future__ import annotations

import importlib.util
from contextlib import ExitStack
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.registry import select_rules
from repro.protocols.registry import (
    CAP_LOGLESS,
    ProtocolSpec,
    record_vocabulary,
    specs,
    temporary_protocol,
)

ROOT = Path(__file__).resolve().parents[2]
FIXTURE = Path(__file__).parent / "fixtures" / "proto_plugins.py"

#: The 1PC vocabulary the fixture subclasses inherit emissions from.
ONEPC_RECORDS = ("STARTED", "UPDATES", "REDO", "COMMITTED", "ABORTED", "ENDED")


@pytest.fixture(scope="module")
def plugin_module():
    spec = importlib.util.spec_from_file_location("proto_plugins_fixture", FIXTURE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _proto_report(extra_paths=()):
    return run_lint(
        [ROOT / "src" / "repro", *extra_paths],
        rules=select_rules(["PROTO"]),
        root=ROOT,
    )


def test_all_registered_protocols_validate_clean():
    assert len(specs()) >= 8
    report = _proto_report()
    assert report.findings == [], "\n".join(
        f"{f.location} {f.rule} {f.message}" for f in report.findings
    )


def test_record_vocabulary_reflects_every_spec():
    vocab = record_vocabulary()
    assert set(vocab) == {spec.name for spec in specs()}
    assert vocab["LGL"] == ()
    assert "REDO" in vocab["1PC"]


def test_each_broken_plugin_yields_exactly_one_finding(plugin_module):
    with ExitStack() as stack:
        stack.enter_context(
            temporary_protocol(
                ProtocolSpec(
                    name="XCHAT",
                    engine=plugin_module.ChattyCommitProtocol,
                    log_records=ONEPC_RECORDS,
                )
            )
        )
        stack.enter_context(
            temporary_protocol(
                ProtocolSpec(
                    name="XFORGET",
                    engine=plugin_module.ForgetfulProtocol,
                    log_records=ONEPC_RECORDS,
                )
            )
        )
        stack.enter_context(
            temporary_protocol(
                ProtocolSpec(
                    name="XNOISY",
                    engine=plugin_module.NoisyLoglessProtocol,
                    log_records=(),
                    capabilities=frozenset({CAP_LOGLESS}),
                )
            )
        )
        report = _proto_report([FIXTURE])
    by_rule = {}
    for finding in report.findings:
        by_rule.setdefault(finding.rule, []).append(finding)
    assert {len(v) for v in by_rule.values()} == {1}
    assert set(by_rule) == {"PROTO001", "PROTO002", "PROTO003"}
    assert "PREPARED" in by_rule["PROTO001"][0].message
    assert "XCHAT" in by_rule["PROTO001"][0].message
    assert "ABORTED" in by_rule["PROTO002"][0].message
    assert "XFORGET" in by_rule["PROTO002"][0].message
    assert "XNOISY" in by_rule["PROTO003"][0].message
    for findings in by_rule.values():
        assert findings[0].path.endswith("proto_plugins.py")


def test_plugins_outside_the_linted_set_are_skipped(plugin_module):
    # Same registrations, but the fixture file is NOT linted: the
    # engines resolve to no project class and must be skipped silently.
    with temporary_protocol(
        ProtocolSpec(
            name="XCHAT",
            engine=plugin_module.ChattyCommitProtocol,
            log_records=ONEPC_RECORDS,
        )
    ):
        report = _proto_report()
    assert report.findings == []
