"""RACE001: stale shared-state writes across DES yield points."""

from __future__ import annotations

from pathlib import Path

from repro.lint import run_lint
from repro.lint.registry import select_rules

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _race_report(*paths, root=None):
    return run_lint(list(paths), rules=select_rules(["RACE"]), root=root)


def test_racy_fixture_reports_the_stale_write():
    report = _race_report(FIXTURES / "race_bad.py")
    assert [f.rule for f in report.findings] == ["RACE001"]
    message = report.findings[0].message
    assert "TicketCounter.issued" in message
    assert "'snapshot'" in message
    assert "issuer()" in message and "redeemer()" in message


def test_yield_separated_fixture_is_clean():
    # Identical processes, but the read happens after the yield: the
    # read-modify-write is atomic at kernel granularity.
    report = _race_report(FIXTURES / "race_good.py")
    assert report.findings == []


def test_no_false_positives_on_the_real_fanout_and_commit_paths():
    # core/fanout.py's sweep loop and core/one_phase.py's commit path
    # both mutate shared engine state from generator processes; the
    # three-legged race condition must keep them clean.
    report = _race_report(
        ROOT / "src" / "repro" / "core" / "fanout.py",
        ROOT / "src" / "repro" / "core" / "one_phase.py",
        root=ROOT,
    )
    assert report.findings == []


def test_no_false_positives_across_the_whole_tree():
    report = _race_report(ROOT / "src" / "repro", root=ROOT)
    assert report.findings == []
