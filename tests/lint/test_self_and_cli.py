"""Dogfooding (`repro lint src/` is clean) and the CLI surface."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import Baseline, run_lint

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def test_self_lint_src_is_clean_against_committed_baseline():
    baseline = Baseline.load(ROOT / "lint-baseline.json")
    report = run_lint([ROOT / "src"], baseline=baseline, root=ROOT)
    assert report.files_checked > 80
    assert report.ok, "new findings in src/:\n" + "\n".join(
        f"{f.location} {f.rule} {f.message}" for f in report.findings
    )


def test_committed_baseline_is_empty():
    # The repo's own baseline must stay empty: fix or pragma instead of
    # grandfathering.  Delete this test only with a reviewed baseline.
    assert len(Baseline.load(ROOT / "lint-baseline.json")) == 0


def test_cli_exit_codes(capsys):
    clean = main(["lint", str(FIXTURES / "det_good.py")])
    assert clean == 0
    dirty = main(["lint", str(FIXTURES / "det_bad.py")])
    assert dirty == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "new findings" in out


def test_cli_json_format(capsys):
    code = main(["lint", str(FIXTURES / "fence_bad.py"), "--format", "json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema_version"] == 1
    assert doc["ok"] is False
    assert doc["files_checked"] == 1
    rules = {finding["rule"] for finding in doc["findings"]}
    assert {"FENCE001", "FENCE002"} <= rules
    assert "DET001" in doc["rules"]


def test_cli_select_restricts_rules(capsys):
    code = main(["lint", str(FIXTURES / "det_bad.py"), "--select", "DET002"])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "DET001" not in out


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "GEN001", "GEN002",
                    "FENCE001", "FENCE002", "API001", "API002", "OBS001"):
        assert rule_id in out


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "api_bad.py")
    assert main(["lint", target, "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    # Same findings now grandfathered: the gate passes.
    assert main(["lint", target, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 new findings, 3 baselined" in out


def test_cli_syntax_error_is_a_finding(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    assert main(["lint", str(broken)]) == 1
    assert "SYN001" in capsys.readouterr().out


def test_cli_unknown_path_errors(capsys):
    assert main(["lint", str(FIXTURES / "does_not_exist.py")]) == 2
