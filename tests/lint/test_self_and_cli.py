"""Dogfooding (`repro lint src/` is clean) and the CLI surface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline, run_lint

ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def test_self_lint_src_is_clean_against_committed_baseline():
    baseline = Baseline.load(ROOT / "lint-baseline.json")
    report = run_lint([ROOT / "src"], baseline=baseline, root=ROOT)
    assert report.files_checked > 80
    assert report.ok, "new findings in src/:\n" + "\n".join(
        f"{f.location} {f.rule} {f.message}" for f in report.findings
    )


def test_committed_baseline_is_empty():
    # The repo's own baseline must stay empty: fix or pragma instead of
    # grandfathering.  Delete this test only with a reviewed baseline.
    assert len(Baseline.load(ROOT / "lint-baseline.json")) == 0


def test_cli_exit_codes(capsys):
    clean = main(["lint", str(FIXTURES / "det_good.py")])
    assert clean == 0
    dirty = main(["lint", str(FIXTURES / "det_bad.py")])
    assert dirty == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "new findings" in out


def test_cli_json_format(capsys):
    code = main(["lint", str(FIXTURES / "fence_bad.py"), "--format", "json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema_version"] == 1
    assert doc["ok"] is False
    assert doc["files_checked"] == 1
    rules = {finding["rule"] for finding in doc["findings"]}
    assert {"FENCE001", "FENCE002"} <= rules
    assert "DET001" in doc["rules"]


def test_cli_select_restricts_rules(capsys):
    code = main(["lint", str(FIXTURES / "det_bad.py"), "--select", "DET002"])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "DET001" not in out


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "GEN001", "GEN002",
                    "FENCE001", "FENCE002", "FENCE003", "API001", "API002",
                    "OBS001", "PROTO001", "PROTO002", "PROTO003", "RACE001"):
        assert rule_id in out


def test_self_lint_gate_covers_the_new_families():
    # The dogfooding gate above runs with the default rule set; this
    # pins that the whole-program families are part of that set.
    from repro.lint.registry import ProjectRule, all_rules

    project_ids = {r.id for r in all_rules() if isinstance(r, ProjectRule)}
    assert {"FENCE003", "PROTO001", "PROTO002", "PROTO003", "RACE001"} <= project_ids


def test_cli_explain_prints_catalog_entry(capsys):
    assert main(["lint", "--explain", "RACE001"]) == 0
    out = capsys.readouterr().out
    assert "RACE001" in out and "(RACE)" in out
    assert "good:" in out and "bad:" in out
    assert "snapshot = self.count" in out


def test_cli_explain_unknown_rule_errors(capsys):
    assert main(["lint", "--explain", "NOPE999"]) == 2


def test_every_rule_has_examples_for_explain():
    from repro.lint.registry import all_rules

    for rule in all_rules():
        assert rule.good_example, f"{rule.id} lacks a good example"
        assert rule.bad_example, f"{rule.id} lacks a bad example"


def test_cli_rule_flag_merges_with_select(capsys):
    code = main(["lint", str(FIXTURES / "det_bad.py"),
                 "--select", "DET002", "--rule", "DET001"])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "DET002" in out and "DET003" not in out


def test_cli_sarif_format_is_valid_2_1_0(capsys):
    code = main(["lint", str(FIXTURES / "fence_bad.py"), "--format", "sarif"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    ids = [rule["id"] for rule in driver["rules"]]
    assert "FENCE002" in ids and "RACE001" in ids
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
    assert run["results"], "fence_bad must produce results"
    for result in run["results"]:
        assert result["level"] == "error"
        assert result["message"]["text"]
        assert ids[result["ruleIndex"]] == result["ruleId"]
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        uri = location["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("fence_bad.py")


def test_sarif_schema_validation_when_available():
    jsonschema = pytest.importorskip("jsonschema")
    from repro.lint.engine import run_lint as _run
    from repro.lint.reporters import render_sarif

    report = _run([FIXTURES / "fence_bad.py"])
    doc = json.loads(render_sarif(report))
    # Offline structural subset of the SARIF 2.1.0 schema: the full
    # schema lives at $schema and CI's upload step validates the rest.
    schema = {
        "type": "object",
        "required": ["version", "runs"],
        "properties": {
            "version": {"const": "2.1.0"},
            "runs": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["tool", "results"],
                    "properties": {
                        "tool": {
                            "type": "object",
                            "required": ["driver"],
                            "properties": {
                                "driver": {
                                    "type": "object",
                                    "required": ["name"],
                                }
                            },
                        },
                        "results": {"type": "array"},
                    },
                },
            },
        },
    }
    jsonschema.validate(doc, schema)


def test_sarif_marks_baselined_findings_as_suppressed(tmp_path):
    from repro.lint.engine import run_lint as _run
    from repro.lint.reporters import render_sarif

    target = FIXTURES / "api_bad.py"
    report = _run([target])
    baseline = Baseline(report.findings)
    doc = json.loads(render_sarif(_run([target], baseline=baseline)))
    results = doc["runs"][0]["results"]
    assert results and all(
        result["suppressions"] == [{"kind": "external"}] for result in results
    )


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "api_bad.py")
    assert main(["lint", target, "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    # Same findings now grandfathered: the gate passes.
    assert main(["lint", target, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 new findings, 3 baselined" in out


def test_cli_syntax_error_is_a_finding(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    assert main(["lint", str(broken)]) == 1
    assert "SYN001" in capsys.readouterr().out


def test_cli_unknown_path_errors(capsys):
    assert main(["lint", str(FIXTURES / "does_not_exist.py")]) == 2
