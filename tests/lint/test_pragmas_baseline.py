"""Pragma suppression and baseline round-trip behaviour."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Baseline, lint_file, run_lint
from repro.lint.baseline import BaselineError
from repro.lint.pragmas import PragmaIndex, rule_family, virtual_path

FIXTURES = Path(__file__).parent / "fixtures"

BAD_CLOCK = (
    "# repro: path src/repro/sim/pragma_fixture.py\n"
    "import time\n"
    "\n"
    "def f():\n"
    "    return time.time(){pragma}\n"
)


def _lint_source(tmp_path, source: str):
    file = tmp_path / "pragma_fixture.py"
    file.write_text(source, encoding="utf-8")
    return lint_file(file)


# -- pragmas ----------------------------------------------------------------


def test_unsuppressed_finding_fires(tmp_path):
    findings = _lint_source(tmp_path, BAD_CLOCK.format(pragma=""))
    assert [f.rule for f in findings] == ["DET001"]


@pytest.mark.parametrize(
    "pragma",
    [
        "  # repro: noqa DET001",
        "  # repro: noqa DET001, GEN001",
        "  # repro: noqa DET",  # family-level suppression
        "  # repro: noqa",  # bare: suppress everything on the line
    ],
)
def test_noqa_pragma_suppresses(tmp_path, pragma):
    assert _lint_source(tmp_path, BAD_CLOCK.format(pragma=pragma)) == []


def test_noqa_for_other_rule_does_not_suppress(tmp_path):
    findings = _lint_source(tmp_path, BAD_CLOCK.format(pragma="  # repro: noqa GEN001"))
    assert [f.rule for f in findings] == ["DET001"]


def test_pragma_only_covers_its_own_line(tmp_path):
    source = BAD_CLOCK.format(pragma="") + "\n\ndef g():\n    return time.time()  # repro: noqa\n"
    findings = _lint_source(tmp_path, source)
    assert len(findings) == 1 and findings[0].line == 5


def test_pragma_index_parsing():
    index = PragmaIndex.scan(
        "x = 1  # repro: noqa DET001\n"
        "y = 2  # repro: noqa\n"
        "z = 3  # unrelated comment\n"
    )
    assert index.suppresses(1, "DET001")
    assert index.suppresses(1, "DET001") and not index.suppresses(1, "OBS001")
    assert index.suppresses(2, "ANYTHING9")
    assert not index.suppresses(3, "DET001")
    assert rule_family("FENCE002") == "FENCE"


def test_virtual_path_directive():
    assert virtual_path("# repro: path src/repro/net/x.py\n") == "src/repro/net/x.py"
    assert virtual_path("print('hi')\n") is None


# -- baseline ---------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    bad = FIXTURES / "det_bad.py"
    first = run_lint([bad])
    assert first.findings and not first.baselined

    baseline_file = tmp_path / "baseline.json"
    Baseline.write(baseline_file, first.findings)

    second = run_lint([bad], baseline=Baseline.load(baseline_file))
    assert second.findings == []
    assert len(second.baselined) == len(first.findings)
    assert second.ok


def test_baseline_is_line_shift_tolerant(tmp_path):
    source = BAD_CLOCK.format(pragma="")
    file = tmp_path / "shifty.py"
    file.write_text(source, encoding="utf-8")
    baseline_file = tmp_path / "baseline.json"
    Baseline.write(baseline_file, run_lint([file]).findings)

    # Insert lines above the finding: it moves but stays baselined.
    file.write_text("# a new leading comment\n\n" + source, encoding="utf-8")
    report = run_lint([file], baseline=Baseline.load(baseline_file))
    assert report.ok and len(report.baselined) == 1


def test_baseline_is_multiset(tmp_path):
    # Two identical findings need two baseline entries.
    source = (
        "# repro: path src/repro/sim/twice.py\n"
        "import time\n"
        "\n"
        "def f():\n"
        "    return time.time(), time.time()\n"
    )
    file = tmp_path / "twice.py"
    file.write_text(source, encoding="utf-8")
    all_findings = run_lint([file]).findings
    assert len(all_findings) == 2

    half = Baseline(all_findings[:1])
    report = run_lint([file], baseline=half)
    assert len(report.baselined) == 1 and len(report.findings) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "nope.json")) == 0


def test_corrupt_baseline_is_an_error(tmp_path):
    bad = tmp_path / "corrupt.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        Baseline.load(bad)
    bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(BaselineError):
        Baseline.load(bad)
