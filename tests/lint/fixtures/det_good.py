# repro: path src/repro/sim/det_fixture_ok.py
"""DET fixture: deterministic spellings of det_bad.py — zero findings."""

import random


def sorted_dispatch(events):
    pending = set(events)
    order = []
    for event in sorted(pending):  # sorted() wrapper: ordered
        order.append(event)
    snapshot = sorted({"a", "b"})
    table = {"x": 1, "y": 2}
    names = [key for key in table]  # dict iteration is insertion-ordered
    return order, snapshot, names


def sim_clock(sim):
    return sim.now


def seeded_choice(options, seed):
    rng = random.Random(seed)  # explicitly seeded: the sanctioned form
    return rng.choice(options)
