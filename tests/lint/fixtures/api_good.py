# repro: path src/repro/harness/api_fixture_ok.py
"""API fixture: the supported keyword-only spellings — zero findings."""

from repro.mds.client import Client
from repro.mds.cluster import Cluster


def modern_cluster():
    cluster = Cluster(protocol="1PC", server_names=["mds1", "mds2"], trace=False)
    client = Client(cluster, name="client7")
    return cluster, client
