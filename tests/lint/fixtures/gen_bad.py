# repro: path src/repro/core/gen_fixture.py
"""GEN fixture: blocking calls and dropped generators in processes."""

import time


def probe_worker_log(cluster, requester, worker, txn_id):
    yield cluster.sim.timeout(0.0)
    return worker, requester, txn_id


def sleepy_process(sim):
    time.sleep(0.5)  # GEN001: blocks the deterministic kernel
    handle = open("/tmp/x")  # GEN001: real IO inside a process
    yield sim.timeout(1.0)
    return handle


def forgetful_coordinator(cluster, sim):
    probe_worker_log(cluster, "mds1", "mds2", 7)  # GEN002: never yielded
    result = yield from probe_worker_log(cluster, "mds1", "mds2", 8)
    return result
