# repro: path src/repro/sim/race_fixture_ok.py
"""RACE001 fixture: the same two processes, read-after-yield — clean."""


class TicketCounter:
    def __init__(self, sim):
        self.sim = sim
        self.issued = 0

    def issuer(self, sim):
        while True:
            yield sim.timeout(1.0)
            fresh = self.issued
            self.issued = fresh + 1

    def redeemer(self, sim):
        while True:
            yield sim.timeout(2.0)
            self.issued = self.issued - 1
