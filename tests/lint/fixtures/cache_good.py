# repro: path src/repro/cache/cache_fixture.py
"""CACHE fixture: canonical serialisation on the cache path."""

import json


def write_entry(doc):
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def write_index(doc):
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))
