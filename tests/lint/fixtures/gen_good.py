# repro: path src/repro/core/gen_fixture_ok.py
"""GEN fixture: the coroutine-safe spellings — zero findings."""


def probe_worker_log(cluster, requester, worker, txn_id):
    yield cluster.sim.timeout(0.0)
    return worker, requester, txn_id


def patient_process(sim):
    yield sim.timeout(0.5)  # virtual time, not host time
    return sim.now


def diligent_coordinator(cluster, sim):
    result = yield from probe_worker_log(cluster, "mds1", "mds2", 7)
    background = sim.process(probe_worker_log(cluster, "mds1", "mds2", 8))
    return result, background


def delegating_helper(cluster):
    # Returning the generator hands it to the caller to drive.
    return probe_worker_log(cluster, "mds1", "mds2", 9)
