# repro: path src/repro/obs/obs_fixture_ok.py
"""OBS fixture: near-zero-cost hooks — zero findings."""


class FrugalHub:
    def __init__(self, sim, trace, metrics):
        self.sim = sim
        self.trace = trace
        self.metrics = metrics
        self.enabled = True

    def msg_send(self, actor, kind, dst):
        if not self.enabled:
            return
        self.trace.emit("msg_send", f"{actor}->{dst}:{kind}")

    def guarded_count(self, name):
        if self.metrics.enabled:
            self.metrics.inc(name)

    def _internal(self, actor):
        # Private helpers are the callee side of a guarded hook.
        self.trace.emit("internal", actor)
