# repro: path src/repro/harness/mem_fixture_ok.py
"""MEM fixture: bounded-memory accumulation — zero findings."""

from collections import deque


class StreamingHarness:
    def __init__(self, stats, window=64):
        self.stats = stats  # a streaming accumulator, O(1) in count
        self.recent = deque(maxlen=window)
        self.committed = 0

    def on_outcome(self, outcome):
        if outcome.committed:
            self.committed += 1
        self.stats.observe(outcome.client_latency)
        local = []
        local.append(outcome.txn_id)  # plain local list: not flagged
        self.recent.appendleft(outcome.txn_id)
