# repro: path src/repro/protocols/fence_fixture.py
"""FENCE fixture: remote-log reads that skip the fencing discipline."""


def impatient_probe(cluster, worker, txn_id):
    # FENCE002: no fence()/is_fenced() dominates the read.
    records = yield from cluster.storage.read_remote_log("mds1", worker)
    return [r for r in records if r.txn_id == txn_id]


def split_brain_probe(cluster, worker):
    # FENCE001 (and FENCE002): opts out of the fencing check outside
    # core/recovery.py.
    records = yield from cluster.storage.read_remote_log(
        "mds1", worker, require_fenced=False
    )
    return records
