# repro: path src/repro/obs/obs_fixture.py
"""OBS fixture: hooks that pay instrumentation cost while disabled."""


class LeakyHub:
    def __init__(self, sim, trace, metrics):
        self.sim = sim
        self.trace = trace
        self.metrics = metrics
        self.enabled = True

    def msg_send(self, actor, kind, dst):
        # OBS001: the f-string is built even when tracing is off.
        label = f"{actor}->{dst}:{kind}"
        if not self.enabled:
            return
        self.trace.emit("msg_send", label)

    def unguarded_count(self, name):
        self.metrics.inc(name)  # OBS001: no enabled check at all
