# repro: path src/repro/harness/mem_fixture.py
"""MEM fixture: per-transaction list growth on the measurement path."""


class LeakyHarness:
    def __init__(self):
        self.latencies = []
        self.outcomes = []

    def on_outcome(self, outcome):
        # MEM001: one float per transaction, forever.
        self.latencies.append(outcome.client_latency)
        if outcome.committed:
            self.outcomes.append(outcome)  # MEM001: whole objects, worse
