# repro: path src/repro/sim/race_fixture.py
"""RACE001 fixture: a lost update across a yield point."""


class TicketCounter:
    def __init__(self, sim):
        self.sim = sim
        self.issued = 0

    def issuer(self, sim):
        while True:
            snapshot = self.issued
            yield sim.timeout(1.0)
            # RACE001: snapshot is stale — redeemer may have run at
            # the yield, and this write silently discards its update.
            self.issued = snapshot + 1

    def redeemer(self, sim):
        while True:
            yield sim.timeout(2.0)
            self.issued = self.issued - 1
