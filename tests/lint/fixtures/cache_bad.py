# repro: path src/repro/cache/cache_fixture.py
"""CACHE fixture: cache-path JSON that leaks dict insertion order."""

import json


def write_entry(doc):
    # CACHE001: no sort_keys — byte layout depends on insertion order.
    return json.dumps(doc, indent=2)


def write_index(doc):
    # CACHE001: sort_keys present but not literally True.
    return json.dumps(doc, sort_keys=False)
