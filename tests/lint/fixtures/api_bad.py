# repro: path src/repro/harness/api_fixture.py
"""API fixture: deprecated construction spellings."""

from repro.mds.client import Client
from repro.mds.cluster import Cluster


def legacy_cluster():
    cluster = Cluster("1PC", ["mds1", "mds2"])  # API001: positional args
    shimmed = Cluster(protocol="1PC", trace_enabled=False)  # API002
    client = Client(cluster, "client7")  # API001: positional name
    return cluster, shimmed, client
