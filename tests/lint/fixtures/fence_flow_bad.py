# repro: path src/repro/core/flow_probe.py
"""FENCE003 fixture: the remote-log read hides inside a helper.

FENCE002 cannot see past the call: the helper suppresses its own
in-function finding with a pragma (the fence obligation belongs to
the callers), and the caller contains no read at all — exactly the
blind spot the interprocedural rule closes.
"""


def _pull_records(cluster, requester, worker, txn_id):
    records = yield from cluster.storage.read_remote_log(requester, worker)  # repro: noqa FENCE002 - callers fence first
    return [r for r in records if r.txn_id == txn_id]


def unfenced_sweep(cluster, requester, worker, txn_id):
    # FENCE003: _pull_records() reaches read_remote_log and nothing
    # here fences the worker first.
    records = yield from _pull_records(cluster, requester, worker, txn_id)
    return records
