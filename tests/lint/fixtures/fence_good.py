# repro: path src/repro/protocols/fence_fixture_ok.py
"""FENCE fixture: the §III discipline — fence, then read."""


def disciplined_probe(cluster, requester, worker, txn_id):
    if not cluster.storage.fencing.is_fenced(worker):
        yield from cluster.fencing_driver.fence(requester, worker)
    records = yield from cluster.storage.read_remote_log(requester, worker)
    return [r for r in records if r.txn_id == txn_id]
