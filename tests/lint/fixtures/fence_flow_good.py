# repro: path src/repro/core/flow_probe_ok.py
"""FENCE003/FENCE002 fixture: fences factored into helpers — clean.

Exercises both halves of the helper-aware discipline:

* ``fenced_sweep`` calls a read-hiding helper, but a fence-establishing
  helper call dominates it (FENCE003 clean);
* ``direct_probe`` reads directly after calling the fencing helper —
  FENCE002 follows same-file helpers, so no pragma is needed.
"""


def _ensure_fenced(cluster, requester, worker):
    if not cluster.storage.fencing.is_fenced(worker):
        yield from cluster.fencing_driver.fence(requester, worker)


def _pull_records(cluster, requester, worker, txn_id):
    records = yield from cluster.storage.read_remote_log(requester, worker)  # repro: noqa FENCE002 - callers fence first
    return [r for r in records if r.txn_id == txn_id]


def fenced_sweep(cluster, requester, worker, txn_id):
    yield from _ensure_fenced(cluster, requester, worker)
    records = yield from _pull_records(cluster, requester, worker, txn_id)
    return records


def direct_probe(cluster, requester, worker):
    yield from _ensure_fenced(cluster, requester, worker)
    records = yield from cluster.storage.read_remote_log(requester, worker)
    return records
