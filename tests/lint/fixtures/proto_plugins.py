# repro: path src/repro/protocols/proto_plugins.py
"""Deliberately broken plug-in engines for the PROTO rule tests.

Each class violates exactly one clause of the spec contract the
PROTO family verifies; the test registers them with
``temporary_protocol`` so they are live registry entries while the
whole-program pass runs.
"""

from repro.core.one_phase import OnePhaseCommitProtocol
from repro.protocols.lgl import LoglessOnePhaseProtocol
from repro.storage.records import RecordKind


class ChattyCommitProtocol(OnePhaseCommitProtocol):
    """Emits a record kind its spec never declared (PROTO001)."""

    name = "XCHAT"

    def coordinate(self, txn):
        # PROTO001: PREPARED is outside the registered vocabulary.
        yield from self.wal.force(self.state_rec(RecordKind.PREPARED, txn.txn_id))
        yield from super().coordinate(txn)


class ForgetfulProtocol(OnePhaseCommitProtocol):
    """Declares ABORTED but recovery never consults it (PROTO002)."""

    name = "XFORGET"

    def recover(self):
        handled = (
            RecordKind.STARTED,
            RecordKind.UPDATES,
            RecordKind.REDO,
            RecordKind.COMMITTED,
            RecordKind.ENDED,
        )
        for record in self.wal.records():
            if record.kind not in handled:
                continue
        yield from ()


class NoisyLoglessProtocol(LoglessOnePhaseProtocol):
    """Registered logless yet forces a WAL record (PROTO003)."""

    name = "XNOISY"

    def run_local(self, txn):
        yield from self.wal.force(self.state_rec(RecordKind.COMMITTED, txn.txn_id))
        yield from super().run_local(txn)
