# repro: path src/repro/sim/det_fixture.py
"""DET fixture: every statement here should trigger a DET rule."""

import random
import time
from datetime import datetime


def hash_ordered_dispatch(events):
    pending = set(events)
    order = []
    for event in pending:  # DET003: set iteration
        order.append(event)
    snapshot = list({"a", "b"})  # DET003: list() of a set literal
    table = {"x": 1, "y": 2}
    names = [key for key in table.keys()]  # DET003: .keys() view
    return order, snapshot, names


def wall_clock_now():
    stamp = time.time()  # DET001
    tick = time.perf_counter()  # DET001
    day = datetime.now()  # DET001
    return stamp, tick, day


def entropy_choice(options):
    pick = random.choice(options)  # DET002
    rng = random.Random()  # DET002: unseeded instance
    return pick, rng
