"""Every rule family fires on its bad fixture and stays quiet on the
good one."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_file
from repro.lint.registry import all_rules, get_rule, select_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture stem -> rule ids that must ALL fire on the bad variant.
EXPECTED = {
    "det": {"DET001", "DET002", "DET003"},
    "gen": {"GEN001", "GEN002"},
    "fence": {"FENCE001", "FENCE002"},
    "api": {"API001", "API002"},
    "obs": {"OBS001"},
    "cache": {"CACHE001"},
    "mem": {"MEM001"},
}


def rules_hit(path: Path) -> set[str]:
    return {finding.rule for finding in lint_file(path)}


@pytest.mark.parametrize("family", sorted(EXPECTED))
def test_bad_fixture_triggers_every_rule_of_family(family):
    hit = rules_hit(FIXTURES / f"{family}_bad.py")
    assert EXPECTED[family] <= hit, f"missing: {EXPECTED[family] - hit}"


@pytest.mark.parametrize("family", sorted(EXPECTED))
def test_good_fixture_is_clean(family):
    assert rules_hit(FIXTURES / f"{family}_good.py") == set()


def test_all_families_are_registered():
    families = {rule.family for rule in all_rules()}
    assert {"DET", "GEN", "FENCE", "API", "OBS", "CACHE", "MEM"} <= families


def test_rules_have_identity_and_rationale():
    for rule in all_rules():
        assert rule.id and rule.summary and rule.rationale


def test_select_rules_by_family_and_id():
    ids = {rule.id for rule in select_rules(["DET", "FENCE002"])}
    assert ids == {"DET001", "DET002", "DET003", "FENCE002"}
    with pytest.raises(KeyError):
        select_rules(["NOPE999"])
    assert get_rule("OBS001").family == "OBS"


def test_findings_report_position_and_path():
    findings = lint_file(FIXTURES / "obs_bad.py")
    assert findings, "obs_bad fixture must produce findings"
    for finding in findings:
        assert finding.path.endswith("obs_bad.py")
        assert finding.line > 0
        assert finding.col > 0


def test_det003_respects_sorted_wrapping_and_dicts():
    # The good fixture iterates the same data sorted()-wrapped or via
    # insertion-ordered dicts; DET003 must distinguish the two.
    bad = [f for f in lint_file(FIXTURES / "det_bad.py") if f.rule == "DET003"]
    assert len(bad) == 3
    good = [f for f in lint_file(FIXTURES / "det_good.py") if f.rule == "DET003"]
    assert good == []


def test_fence_rules_do_not_fire_in_tests_or_recovery(tmp_path):
    # The same source as fence_bad.py, but virtually located in tests/
    # and in core/recovery.py: the escape hatch is sanctioned there.
    source = (FIXTURES / "fence_bad.py").read_text(encoding="utf-8")
    for virtual, allowed in [
        ("tests/protocols/test_fixture.py", {"FENCE001", "FENCE002"}),
        ("src/repro/core/recovery.py", {"FENCE001"}),
    ]:
        relocated = source.replace(
            "# repro: path src/repro/protocols/fence_fixture.py",
            f"# repro: path {virtual}",
        )
        tmp = tmp_path / "relocated_fixture.py"
        tmp.write_text(relocated, encoding="utf-8")
        hit = rules_hit(tmp)
        assert not (hit & allowed), f"{virtual} must allow {allowed}, got {hit}"
