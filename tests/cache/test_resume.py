"""Crash-safe incremental sweeps: byte identity and killed-sweep resume."""

from __future__ import annotations

import os
import time

import pytest

from repro.cache import ResultCache
from repro.exec import (
    ExperimentError,
    RunSpec,
    abort_rate_grid,
    figure6_grid,
    register_runner,
    run_grid,
    run_sweep,
    scaling_grid,
)

GRIDS = {
    "figure6": lambda: figure6_grid(n=12),
    "abort_burst": lambda: abort_rate_grid([0.0, 0.2], n=10),
    "scaling": lambda: scaling_grid("1PC", pair_counts=(1, 2), ops_per_dir=8),
}


@pytest.mark.parametrize("kind", sorted(GRIDS))
def test_warm_sweep_is_byte_identical_to_cold(kind, tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    specs = GRIDS[kind]()
    cold = run_sweep(specs, kind=kind, cache=cache)
    warm = run_sweep(specs, kind=kind, cache=cache)
    assert cold.to_json(canonical=True) == warm.to_json(canonical=True)
    assert (cold.cached, cold.computed) == (0, len(specs))
    assert (warm.cached, warm.computed) == (len(specs), 0)
    # And identical to a sweep that never saw a cache.
    plain = run_sweep(specs, kind=kind)
    assert plain.to_json(canonical=True) == cold.to_json(canonical=True)


def test_pooled_cold_and_serial_warm_agree(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    specs = figure6_grid(n=10)
    cold = run_sweep(specs, kind="figure6", workers=3, cache=cache)
    warm = run_sweep(specs, kind="figure6", workers=1, cache=cache)
    assert cold.to_json(canonical=True) == warm.to_json(canonical=True)
    assert warm.cached == len(specs)


def test_refresh_recomputes_and_overwrites(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    specs = figure6_grid(n=10)
    cold = run_sweep(specs, kind="figure6", cache=cache)
    stale = cache.entries()[0]
    stale.path.write_text("{ garbage", encoding="utf-8")
    refreshed = run_sweep(specs, kind="figure6", cache=cache, refresh=True)
    assert (refreshed.cached, refreshed.computed) == (0, len(specs))
    assert refreshed.to_json(canonical=True) == cold.to_json(canonical=True)
    # The garbage entry was overwritten, so a warm pass now fully hits.
    warm = run_sweep(specs, kind="figure6", cache=cache)
    assert warm.cached == len(specs)


def test_trace_specs_bypass_the_cache(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    spec = RunSpec(kind="burst", protocol="1PC", n=6, trace=True)
    run_grid([spec], cache=cache)
    run_grid([spec], cache=cache)
    assert cache.stats.hits == 0
    assert cache.stats.bypasses == 2
    assert cache.entries() == []


def test_hit_reporting_flows_through_progress_and_trace(tmp_path):
    from repro.exec import host_trace_log

    cache = ResultCache(root=tmp_path / "cache")
    specs = figure6_grid(n=8, protocols=("1PC", "EP"))
    run_grid(specs, cache=cache)

    events = []
    trace = host_trace_log()
    run_grid(specs, cache=cache, progress=events.append, trace=trace)
    assert [e.done for e in events] == [1, 2]
    assert all(e.cached and e.seconds == 0.0 for e in events)
    assert trace.count("exec", event="cell_cached") == 2
    assert trace.count("exec", event="cell_done") == 0


def test_partial_cache_computes_only_missing_cells(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    specs = figure6_grid(n=9)
    run_grid(specs[:2], cache=cache)
    before = cache.stats
    sweep = run_sweep(specs, kind="figure6", cache=cache)
    delta = cache.stats - before
    rest = len(specs) - 2
    assert (sweep.cached, sweep.computed) == (2, rest)
    assert (delta.hits, delta.misses, delta.writes) == (2, rest, rest)
    assert sweep.to_json(canonical=True) == run_sweep(specs, kind="figure6").to_json(
        canonical=True
    )


# -- killed pooled sweep -------------------------------------------------------

_POISON_DIR_VAR = "REPRO_TEST_POISON_WATCH_DIR"
_POISON_TARGET_VAR = "REPRO_TEST_POISON_TARGET"


def _poison_runner(spec, keep_cluster):  # pragma: no cover - dies in a fork
    """Spin until the watched cache holds the target entry count, then die.

    Stands in for an operator killing the sweep mid-grid, at a moment
    when every other cell has already been written through.
    """
    from pathlib import Path

    watch = Path(os.environ[_POISON_DIR_VAR]) / "objects"
    target = int(os.environ[_POISON_TARGET_VAR])
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if len(list(watch.glob("*/*.json"))) >= target:
            break
        time.sleep(0.01)
    os._exit(1)


register_runner("poison", _poison_runner)


def test_killed_pooled_sweep_resumes_with_only_remaining_cells(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    real_specs = [RunSpec(kind="burst", protocol="1PC", n=n) for n in range(5, 12)]
    poison = RunSpec(kind="poison", protocol="1PC", n=1)
    monkeypatch.setenv(_POISON_DIR_VAR, str(root))
    monkeypatch.setenv(_POISON_TARGET_VAR, str(len(real_specs)))

    cache = ResultCache(root=root)
    with pytest.raises(ExperimentError, match="worker process died"):
        run_grid([poison] + real_specs, workers=2, cache=cache)

    # The kill lost the sweep, not the work: every completed cell was
    # written through before the crash.
    assert len(cache.entries()) == len(real_specs)

    # Re-run with the poison cell replaced by real remaining work: only
    # that one cell computes, everything else is served from disk.
    remaining = RunSpec(kind="burst", protocol="1PC", n=12)
    before = cache.stats
    sweep = run_sweep([remaining] + real_specs, kind="figure6", workers=2, cache=cache)
    delta = cache.stats - before
    assert (delta.hits, delta.misses) == (len(real_specs), 1)
    assert (sweep.cached, sweep.computed) == (len(real_specs), 1)

    uncached = run_sweep([remaining] + real_specs, kind="figure6")
    assert sweep.to_json(canonical=True) == uncached.to_json(canonical=True)
