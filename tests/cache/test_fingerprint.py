"""The code fingerprint: any source change moves every cache address."""

from __future__ import annotations

from repro.cache import ResultCache, clear_fingerprint_cache, code_fingerprint, package_root
from repro.exec import RunSpec, execute_spec


def make_tree(root, files):
    for name, text in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


def test_fingerprint_is_stable_and_hex(tmp_path):
    make_tree(tmp_path, {"a.py": "x = 1\n", "sub/b.py": "y = 2\n"})
    fp = code_fingerprint(tmp_path)
    assert fp == code_fingerprint(tmp_path)
    assert len(fp) == 64 and int(fp, 16) >= 0


def test_fingerprint_changes_on_edit_rename_delete(tmp_path):
    make_tree(tmp_path, {"a.py": "x = 1\n", "sub/b.py": "y = 2\n"})
    base = code_fingerprint(tmp_path)

    clear_fingerprint_cache()
    (tmp_path / "a.py").write_text("x = 2\n", encoding="utf-8")
    edited = code_fingerprint(tmp_path)
    assert edited != base

    clear_fingerprint_cache()
    (tmp_path / "sub" / "b.py").rename(tmp_path / "sub" / "c.py")
    renamed = code_fingerprint(tmp_path)
    assert renamed not in (base, edited)

    clear_fingerprint_cache()
    (tmp_path / "sub" / "c.py").unlink()
    deleted = code_fingerprint(tmp_path)
    assert deleted not in (base, edited, renamed)


def test_fingerprint_ignores_pycache_and_non_python(tmp_path):
    make_tree(tmp_path, {"a.py": "x = 1\n"})
    base = code_fingerprint(tmp_path)
    clear_fingerprint_cache()
    make_tree(tmp_path, {"__pycache__/a.cpython-311.py": "junk\n", "notes.txt": "hello\n"})
    assert code_fingerprint(tmp_path) == base


def test_fingerprint_is_memoised(tmp_path):
    make_tree(tmp_path, {"a.py": "x = 1\n"})
    base = code_fingerprint(tmp_path)
    # Without clearing the memo, an edit is (deliberately) not seen.
    (tmp_path / "a.py").write_text("x = 99\n", encoding="utf-8")
    assert code_fingerprint(tmp_path) == base
    clear_fingerprint_cache()
    assert code_fingerprint(tmp_path) != base


def test_default_root_is_the_installed_package():
    root = package_root()
    assert (root / "__init__.py").is_file()
    assert code_fingerprint() == code_fingerprint(root)


def test_code_change_invalidates_cached_entries(tmp_path):
    """The acceptance-criteria proof: mutate the fingerprint, entries miss."""
    spec = RunSpec(kind="burst", protocol="1PC", n=10, seed=0)
    cell = execute_spec(spec)

    before = ResultCache(root=tmp_path / "cache", fingerprint="fp-before")
    before.put(spec, cell)
    assert before.get(spec) is not None

    after = ResultCache(root=tmp_path / "cache", fingerprint="fp-after")
    assert after.get(spec) is None
    assert after.stats.misses == 1
    # The old entry is untouched on disk — it is unreachable, not erased.
    assert before.get(spec) is not None
