"""ResultCache: addressing, round-trips, atomicity, maintenance."""

from __future__ import annotations

import json
import os

import pytest

from repro.cache import CacheStats, ResultCache, cache_key
from repro.exec import RunSpec, derive_seed, execute_spec
from repro.exec.spec import CellResult


def make_cache(tmp_path, **kwargs):
    kwargs.setdefault("fingerprint", "test-fingerprint")
    return ResultCache(root=tmp_path / "cache", **kwargs)


def burst_spec(**kwargs):
    kwargs.setdefault("kind", "burst")
    kwargs.setdefault("protocol", "1PC")
    kwargs.setdefault("n", 10)
    return RunSpec(**kwargs)


def test_cache_key_is_stable_and_sensitive():
    spec = burst_spec()
    key = cache_key(spec, "fp")
    assert key == cache_key(burst_spec(), "fp")
    assert key != cache_key(burst_spec(n=11), "fp")
    assert key != cache_key(spec, "fp2")
    assert len(key) == 64


def test_put_get_round_trip_preserves_canonical_cell(tmp_path):
    cache = make_cache(tmp_path)
    spec = burst_spec()
    cell = execute_spec(spec)
    cache.put(spec, cell)
    got = cache.get(spec)
    assert got is not None
    assert got.to_dict() == cell.to_dict()
    # ``params=None`` round-trips as the materialised defaults — same
    # identity (hence same cache key), not dataclass equality.
    assert got.spec.identity() == spec.identity()
    assert got.derived_seed == derive_seed(spec)
    assert got.payload is None
    assert cache.stats == CacheStats(hits=1, misses=0, bypasses=0, writes=1)


def test_get_on_empty_cache_is_a_miss(tmp_path):
    cache = make_cache(tmp_path)
    assert cache.get(burst_spec()) is None
    assert cache.stats.misses == 1


def test_entry_is_canonical_sorted_json(tmp_path):
    cache = make_cache(tmp_path)
    spec = burst_spec()
    path = cache.put(spec, execute_spec(spec))
    text = path.read_text(encoding="utf-8")
    doc = json.loads(text)
    assert text == json.dumps(doc, sort_keys=True, indent=2) + "\n"
    assert doc["key"] == cache.key_for(spec)
    assert doc["fingerprint"] == "test-fingerprint"
    assert doc["spec_identity"] == spec.identity()
    assert set(doc["meta"]) == {"created_at", "git_rev"}


def test_corrupt_entry_is_deleted_and_recomputable(tmp_path):
    cache = make_cache(tmp_path)
    spec = burst_spec()
    path = cache.put(spec, execute_spec(spec))
    path.write_text("{ truncated", encoding="utf-8")
    assert cache.get(spec) is None
    assert not path.exists()
    assert cache.stats.misses == 1


def test_entry_at_wrong_address_is_not_served(tmp_path):
    # A document copied to another spec's address must be rejected: the
    # embedded key no longer matches where it lives.
    cache = make_cache(tmp_path)
    a, b = burst_spec(), burst_spec(n=11)
    path_a = cache.put(a, execute_spec(a))
    path_b = cache.path_for(b)
    path_b.parent.mkdir(parents=True, exist_ok=True)
    path_b.write_text(path_a.read_text(encoding="utf-8"), encoding="utf-8")
    assert cache.get(b) is None
    assert not path_b.exists()


def test_interrupted_write_leaves_no_entry_and_no_stray_after_sweep(tmp_path, monkeypatch):
    cache = make_cache(tmp_path)
    spec = burst_spec()
    cell = execute_spec(spec)

    def explode(src, dst):
        raise OSError("simulated crash at the rename point")

    monkeypatch.setattr(os, "replace", explode)
    with pytest.raises(OSError):
        cache.put(spec, cell)
    monkeypatch.undo()

    # Nothing servable, nothing half-written.
    assert cache.get(spec) is None
    assert list((tmp_path / "cache").rglob("*.tmp")) == []
    assert cache.entries() == []


def test_writes_are_temp_file_then_rename(tmp_path, monkeypatch):
    cache = make_cache(tmp_path)
    spec = burst_spec()
    observed = {}
    real_replace = os.replace

    def spying_replace(src, dst):
        observed[str(dst)] = str(src)
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", spying_replace)
    path = cache.put(spec, execute_spec(spec))
    src = observed[str(path)]
    assert src.endswith(".tmp")
    assert os.path.dirname(src) == str(path.parent)


def test_fsync_mode_round_trips(tmp_path):
    cache = make_cache(tmp_path, fsync=True)
    spec = burst_spec()
    cache.put(spec, execute_spec(spec))
    assert cache.get(spec) is not None


def test_clear_removes_entries_and_strays(tmp_path):
    cache = make_cache(tmp_path)
    for n in (5, 6, 7):
        spec = burst_spec(n=n)
        cache.put(spec, execute_spec(spec))
    stray = tmp_path / "cache" / "objects" / "ab" / "junk.tmp"
    stray.parent.mkdir(parents=True, exist_ok=True)
    stray.write_text("debris", encoding="utf-8")
    assert cache.clear() == 3
    assert cache.entries() == []
    assert not stray.exists()
    assert cache.total_bytes() == 0


def test_gc_evicts_least_recently_used_first(tmp_path):
    cache = make_cache(tmp_path)
    specs = [burst_spec(n=n) for n in (5, 6, 7)]
    paths = [cache.put(spec, execute_spec(spec)) for spec in specs]
    # Make recency deterministic and spec-ordered: oldest first.
    for age, path in enumerate(paths):
        os.utime(path, (1000.0 + age, 1000.0 + age))
    sizes = [path.stat().st_size for path in paths]

    removed, freed = cache.gc(sizes[1] + sizes[2])
    assert (removed, freed) == (1, sizes[0])
    assert not paths[0].exists() and paths[1].exists() and paths[2].exists()

    # A hit refreshes recency, so the next eviction spares the hit entry.
    cache.get(specs[1])
    removed, _ = cache.gc(sizes[1])
    assert removed == 1
    assert paths[1].exists() and not paths[2].exists()

    assert cache.gc(0) == (1, sizes[1])
    assert cache.entries() == []


def test_gc_rejects_negative_budget_and_noops_when_small(tmp_path):
    cache = make_cache(tmp_path)
    spec = burst_spec()
    cache.put(spec, execute_spec(spec))
    with pytest.raises(ValueError):
        cache.gc(-1)
    assert cache.gc(10 * 1024 * 1024) == (0, 0)
    assert len(cache.entries()) == 1


def test_describe_reports_kinds_from_index(tmp_path):
    cache = make_cache(tmp_path)
    for spec in (burst_spec(), burst_spec(kind="abort_burst", abort_rate=0.1)):
        cache.put(spec, execute_spec(spec))
    doc = cache.describe()
    assert doc["entries"] == 2
    assert doc["kinds"] == {"abort_burst": 1, "burst": 1}
    assert doc["fingerprint"] == "test-fingerprint"
    assert doc["total_bytes"] == cache.total_bytes() > 0


def test_lost_index_degrades_gracefully(tmp_path):
    # The object files are authoritative; a deleted index only loses
    # kind labels, never entries.
    cache = make_cache(tmp_path)
    spec = burst_spec()
    cache.put(spec, execute_spec(spec))
    (tmp_path / "cache" / "index.json").unlink()
    assert cache.get(spec) is not None
    assert cache.describe()["kinds"] == {"?": 1}


def test_metrics_flow_through_injected_registry(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cache = make_cache(tmp_path, metrics=registry)
    spec = burst_spec()
    cache.get(spec)
    cache.put(spec, execute_spec(spec))
    cache.get(spec)
    cache.count_bypass()
    assert registry.get_counter("cache.miss").value == 1
    assert registry.get_counter("cache.write").value == 1
    assert registry.get_counter("cache.hit").value == 1
    assert registry.get_counter("cache.bypass").value == 1


def test_cell_result_from_dict_round_trips_latency():
    spec = burst_spec()
    cell = execute_spec(spec)
    assert cell.latency is not None
    doc = cell.to_dict()
    back = CellResult.from_dict(doc)
    assert back.to_dict() == doc
    assert back.latency.p95 == cell.latency.p95
