"""Public API surface guard: every exported name must import."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.storage",
    "repro.locks",
    "repro.fs",
    "repro.protocols",
    "repro.core",
    "repro.mds",
    "repro.faults",
    "repro.workloads",
    "repro.analysis",
    "repro.harness",
    "repro.cache",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_api_shape():
    import repro

    # The names a downstream user reaches for first.
    for symbol in (
        "Cluster",
        "Client",
        "OnePhaseCommitProtocol",
        "PresumeNothingProtocol",
        "SimulationParams",
        "PROTOCOLS",
        "BatchPlanner",
    ):
        assert symbol in repro.__all__

    assert set(repro.PROTOCOLS) == {
        "PrN", "PrC", "EP", "PrA", "1PC", "PC", "LGL", "1PC-N",
    }


def test_version_is_set():
    import repro

    assert repro.__version__ == "1.0.0"


def test_every_protocol_class_has_required_interface():
    from repro.protocols import PROTOCOLS

    for cls in PROTOCOLS.values():
        for method in ("coordinate", "worker_session", "recover", "handle_stray", "run_local"):
            assert hasattr(cls, method), f"{cls.__name__} lacks {method}"
        assert cls.name
