"""Span and SpanCollector lifecycle unit tests."""

from repro.obs import (
    COORDINATOR,
    UNCLOSED,
    WORKER,
    EventKind,
    SpanCollector,
    SpanEvent,
)
from repro.sim import Simulator


def collector():
    return SpanCollector(Simulator())


def test_root_span_opens_and_closes():
    spans = collector()
    root = spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1", protocol="1PC")
    assert root.txn_id == 1 and root.role == COORDINATOR
    assert not root.closed and root.duration is None
    spans.close(root, "committed", reason="")
    assert root.closed and root.status == "committed"
    assert spans.span_of(1) is root
    assert spans.roots() == [root]


def test_worker_leg_links_to_root():
    spans = collector()
    root = spans.begin(7, name="CREATE", role=COORDINATOR, actor="mds1")
    leg = spans.begin(7, name="UPDATE_REQ", role=WORKER, actor="mds2")
    assert leg.parent_id == root.span_id
    assert root.children == [leg]
    assert spans.leg_of(7, "mds2") is leg


def test_reopening_a_leg_returns_the_original():
    spans = collector()
    spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1")
    first = spans.begin(1, name="UPDATE_REQ", role=WORKER, actor="mds2")
    again = spans.begin(1, name="UPDATE_REQ", role=WORKER, actor="mds2")
    assert again is first
    assert len(spans) == 2
    # Same for the coordinator side.
    assert spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1") is spans.span_of(1)


def test_record_prefers_the_actors_leg_over_the_root():
    spans = collector()
    root = spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1")
    leg = spans.begin(1, name="UPDATE_REQ", role=WORKER, actor="mds2")
    spans.record(1, SpanEvent(0.0, EventKind.WAL_APPEND, "mds2", {"sync": True}))
    spans.record(1, SpanEvent(0.0, EventKind.MSG_SEND, "mds1", {"kind": "UPDATE_REQ"}))
    assert [e.kind for e in leg.events] == [EventKind.WAL_APPEND]
    assert [e.kind for e in root.events] == [EventKind.MSG_SEND]
    # iter_events recurses into the legs.
    assert len(list(root.iter_events())) == 2
    assert len(list(root.iter_events(recurse=False))) == 1


def test_record_without_txn_goes_to_cluster_events():
    spans = collector()
    spans.record(None, SpanEvent(1.0, EventKind.CRASH, "mds2", {}))
    spans.record(99, SpanEvent(2.0, EventKind.MSG_SEND, "mds1", {}))  # unknown txn
    assert [e.kind for e in spans.cluster_events] == [EventKind.CRASH, EventKind.MSG_SEND]


def test_disabled_collector_records_nothing():
    spans = SpanCollector(Simulator(), enabled=False)
    assert spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1") is None
    spans.record(1, SpanEvent(0.0, EventKind.MSG_SEND, "mds1", {}))
    assert len(spans) == 0 and spans.cluster_events == []


def test_close_open_bounds_unclosed_spans():
    """A transaction cut short (crash) leaves its span open; close_open
    must close it at the latest known time with UNCLOSED status."""
    sim = Simulator()
    spans = SpanCollector(sim)
    root = spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1")
    root.add(SpanEvent(5.0, EventKind.MSG_SEND, "mds1", {}))
    done = spans.begin(2, name="CREATE", role=COORDINATOR, actor="mds1")
    spans.close(done, "committed")
    closed = spans.close_open()
    assert closed == [root]
    assert root.status == UNCLOSED
    assert root.end == 5.0  # last event time > sim.now == 0
    assert spans.open_spans() == []
    # Idempotent: nothing left to close.
    assert spans.close_open() == []


def test_close_is_idempotent():
    spans = collector()
    root = spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1")
    spans.close(root, "committed")
    spans.close(root, "aborted")  # ignored: already closed
    assert root.status == "committed"


def test_events_of_merges_legs_in_time_order():
    spans = collector()
    spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1")
    spans.begin(1, name="UPDATE_REQ", role=WORKER, actor="mds2")
    spans.record(1, SpanEvent(2.0, EventKind.WAL_APPEND, "mds2", {}))
    spans.record(1, SpanEvent(1.0, EventKind.MSG_SEND, "mds1", {}))
    assert [e.time for e in spans.events_of(1)] == [1.0, 2.0]
    assert spans.events_of(42) == []


def test_last_time_considers_children():
    spans = collector()
    root = spans.begin(1, name="CREATE", role=COORDINATOR, actor="mds1")
    leg = spans.begin(1, name="UPDATE_REQ", role=WORKER, actor="mds2")
    leg.add(SpanEvent(9.0, EventKind.WAL_APPEND, "mds2", {}))
    assert root.last_time() == 9.0
