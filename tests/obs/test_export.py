"""Exporter tests: JSONL round-trip and Chrome trace_event validity."""

import io
import json

import pytest

from repro.harness.scenarios import distributed_create_cluster
from repro.obs import (
    SpanCollector,
    chrome_trace,
    dump_spans,
    load_spans,
    validate_trace_event,
    write_chrome_trace,
)
from repro.sim import Simulator


@pytest.fixture(scope="module")
def traced_cluster():
    """One committed distributed CREATE with full observability."""
    cluster, client = distributed_create_cluster("1PC")
    done = cluster.sim.process(client.create("/dir1/f0"), name="t")
    cluster.sim.run(until=done)
    cluster.sim.run(until=cluster.sim.now + 60.0)
    cluster.obs.spans.close_open()
    return cluster


def test_jsonl_round_trip(traced_cluster):
    roots = traced_cluster.obs.spans.roots()
    buf = io.StringIO()
    assert dump_spans(roots, buf) == len(roots) == 1
    buf.seek(0)
    loaded = load_spans(buf)
    assert loaded[0]["txn_id"] == roots[0].txn_id
    assert loaded[0]["role"] == "coordinator"
    assert loaded[0]["status"] == "committed"
    assert loaded[0]["children"] == [c.span_id for c in roots[0].children]
    assert all(set(e) == {"t", "kind", "actor", "attrs"} for e in loaded[0]["events"])


def test_span_dump_lines_are_sorted_and_stable(traced_cluster):
    buf = io.StringIO()
    dump_spans(traced_cluster.obs.spans.roots(), buf)
    line = buf.getvalue().splitlines()[0]
    assert line == json.dumps(json.loads(line), sort_keys=True)


def test_chrome_trace_is_valid_trace_event_json(traced_cluster):
    doc = chrome_trace(traced_cluster.obs.spans, protocol="1PC")
    assert validate_trace_event(doc) == []
    assert doc["otherData"] == {"protocol": "1PC"}
    events = doc["traceEvents"]
    # One process metadata record per MDS node, names stable.
    names = sorted(
        e["args"]["name"] for e in events if e["name"] == "process_name"
    )
    # One track per MDS node, plus the cluster track for events owned
    # by no transaction (e.g. trailing GC).
    assert names == ["cluster", "mds1", "mds2"]
    # The coordinator span renders as a complete event labelled by txn.
    complete = [e for e in events if e["ph"] == "X" and e["cat"] == "coordinator"]
    assert len(complete) == 1
    assert complete[0]["name"].startswith("txn ")
    assert complete[0]["dur"] > 0
    # JSON-serialisable end to end.
    json.dumps(doc)


def test_write_chrome_trace_writes_the_document(traced_cluster, tmp_path):
    path = tmp_path / "trace.json"
    with open(path, "w", encoding="utf-8") as fp:
        doc = write_chrome_trace(traced_cluster.obs.spans, fp, protocol="1PC")
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(doc, sort_keys=True)
    )


def test_chrome_trace_of_empty_collector_flags_no_events():
    empty = SpanCollector(Simulator())
    doc = chrome_trace(empty)
    assert "'traceEvents' is empty" in validate_trace_event(doc)


def test_validator_catches_malformed_documents():
    assert validate_trace_event([]) == ["top level must be a JSON object"]
    assert validate_trace_event({}) == ["'traceEvents' must be a list"]
    bad = {
        "traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "X", "name": "", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
            {"ph": "X", "name": "x", "pid": "p", "tid": 1, "ts": -1, "dur": 1},
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "i", "name": "x", "pid": 1, "tid": 1, "ts": 0, "s": "q"},
            {"ph": "i", "name": "x", "pid": 1, "tid": 1, "ts": 0, "args": 3},
        ]
    }
    problems = validate_trace_event(bad)
    assert any("bad phase" in p for p in problems)
    assert any("missing name" in p for p in problems)
    assert any("pid must be an integer" in p for p in problems)
    assert any("ts must be a non-negative" in p for p in problems)
    assert any("needs non-negative dur" in p for p in problems)
    assert any("instant scope" in p for p in problems)
    assert any("args must be an object" in p for p in problems)


def test_validator_accepts_cli_chrome_output(tmp_path):
    """End-to-end: the CLI's chrome export passes the CI validator."""
    from repro.cli import main

    out = tmp_path / "cell.json"
    assert main(["trace", "--n", "4", "--format", "chrome", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert validate_trace_event(doc) == []


def test_open_span_exports_with_bounded_duration():
    sim = Simulator()
    spans = SpanCollector(sim)
    span = spans.begin(1, name="CREATE", role="coordinator", actor="mds1")
    from repro.obs import EventKind, SpanEvent

    span.add(SpanEvent(3.0, EventKind.MSG_SEND, "mds1", {"kind": "UPDATE_REQ"}))
    doc = chrome_trace(spans)
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert complete[0]["dur"] == pytest.approx(3.0 * 1e6)
    assert validate_trace_event(doc) == []
