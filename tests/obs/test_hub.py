"""Observability hub: fan-out, adoption rules, lifecycle semantics."""

from repro.obs import EventKind, Observability
from repro.sim import Simulator, TraceLog


def hub():
    return Observability(Simulator())


def test_disabled_hub_records_nothing():
    obs = Observability.disabled(Simulator())
    assert not obs.enabled
    obs.txn_start("mds1", 1, op="CREATE", protocol="1PC", submitted_at=0.0)
    obs.msg_send("mds1", kind="UPDATE_REQ", dst="mds2", txn=1, msg_id=1)
    obs.annotate("whatever", "mds1", txn=1)
    obs.txn_done(
        "mds1", 1, committed=True, op="CREATE", latency=0.1, replied_at=0.1
    )
    assert len(obs.trace) == 0
    assert len(obs.spans) == 0
    assert obs.metrics.snapshot() == {"counters": {}, "histograms": {}}


def test_adopt_explicit_hub_wins():
    sim = Simulator()
    obs = Observability(sim)
    assert Observability.adopt(sim, obs, TraceLog(sim)) is obs


def test_adopt_bare_trace_keeps_legacy_records_only():
    sim = Simulator()
    trace = TraceLog(sim)
    obs = Observability.adopt(sim, None, trace)
    assert obs.trace is trace
    assert not obs.spans.enabled and not obs.metrics.enabled
    obs.msg_send("a", kind="UPDATE_REQ", dst="b", txn=1, msg_id=1)
    assert trace.count("msg_send") == 1
    assert len(obs.spans) == 0


def test_adopt_neither_is_disabled():
    sim = Simulator()
    assert not Observability.adopt(sim, None, None).enabled


def test_txn_lifecycle_emits_legacy_records_and_closes_root():
    obs = hub()
    root = obs.txn_start(
        "mds1", 5, op="CREATE", protocol="1PC", submitted_at=0.0, client="c1"
    )
    obs.client_reply("mds1", 5, committed=True, op="CREATE")
    obs.txn_done(
        "mds1", 5, committed=True, op="CREATE", latency=0.2, replied_at=0.2
    )
    assert obs.trace.count("txn_start") == 1
    assert obs.trace.count("client_reply") == 1
    assert obs.trace.count("txn_done") == 1
    assert root.closed and root.status == "committed"
    assert root.attrs["replied_at"] == 0.2  # txn_done's authoritative value
    assert obs.metrics.get_counter("txn.started").value == 1
    assert obs.metrics.get_counter("txn.committed").value == 1
    assert obs.metrics.get_histogram("txn.client_latency").count == 1


def test_worker_leg_inherits_decided_outcome():
    obs = hub()
    obs.txn_start("mds1", 1, op="CREATE", protocol="1PC", submitted_at=0.0)
    obs.worker_open("mds2", 1, opener="UPDATE_REQ", protocol="1PC")
    obs.txn_done("mds1", 1, committed=True, op="CREATE", latency=0.1, replied_at=0.1)
    # 1PC shape: the coordinator decides before the worker session closes.
    obs.worker_close("mds2", 1)
    assert obs.spans.leg_of(1, "mds2").status == "committed"


def test_worker_leg_closed_before_decision_reads_closed():
    obs = hub()
    obs.txn_start("mds1", 1, op="CREATE", protocol="PrN", submitted_at=0.0)
    obs.worker_open("mds2", 1, opener="PREPARE", protocol="PrN")
    # 2PC shape: the worker ACKs and closes first.
    obs.worker_close("mds2", 1)
    assert obs.spans.leg_of(1, "mds2").status == "closed"


def test_annotate_matches_legacy_emit_bytes():
    """annotate() must produce the byte-identical legacy record."""
    sim = Simulator()
    obs = Observability(sim)
    reference = TraceLog(sim)
    obs.annotate("ack_gave_up", "mds2", txn=3, waited=0.5)
    reference.emit("ack_gave_up", "mds2", txn=3, waited=0.5)
    rec, ref = obs.trace.records[0], reference.records[0]
    assert (rec.category, rec.actor, rec.detail) == (ref.category, ref.actor, ref.detail)
    assert list(rec.detail) == list(ref.detail)  # kwargs order preserved
    # The span side sees an annotation event tagged with the category.
    events = obs.spans.cluster_events  # txn 3 has no span -> cluster scope
    assert events[0].kind == EventKind.ANNOTATION
    assert events[0].get("category") == "ack_gave_up"
    assert "txn" not in events[0].attrs


def test_lock_hold_time_histogram():
    sim = Simulator()
    obs = Observability(sim)
    obs.lock_grant("locks:mds1", txn=1, obj="dentry:/d/f", mode="X")
    sim.run(until=0.25)
    obs.lock_release("locks:mds1", txn=1, obj="dentry:/d/f")
    hist = obs.metrics.get_histogram("locks.hold_time")
    assert hist.count == 1
    assert hist.values[0] == 0.25
    # Releasing an unknown lock does not observe anything.
    obs.lock_release("locks:mds1", txn=9, obj="ghost")
    assert hist.count == 1


def test_txn_done_folds_span_into_per_txn_metrics():
    obs = hub()
    obs.txn_start("mds1", 1, op="CREATE", protocol="1PC", submitted_at=0.0)
    obs.worker_open("mds2", 1, opener="UPDATE_REQ")
    obs.log_append("mds1", kind="commit", txn=1, sync=True, nbytes=100)
    obs.log_append("mds2", kind="redo", txn=1, sync=True, nbytes=100)
    obs.log_append("mds2", kind="done", txn=1, sync=False, nbytes=10)
    obs.msg_send("mds1", kind="UPDATE_REQ", dst="mds2", txn=1, msg_id=1)
    obs.msg_send("mds1", kind="CLIENT_REPLY", dst="client1", txn=1, msg_id=2)
    obs.txn_done("mds1", 1, committed=True, op="CREATE", latency=0.1, replied_at=0.1)
    assert obs.metrics.get_histogram("txn.forced_writes").values == [2.0]
    # Client traffic is not a protocol message.
    assert obs.metrics.get_histogram("txn.messages").values == [1.0]
