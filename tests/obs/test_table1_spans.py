"""Conformance: span-derived cost counts equal the paper's Table I.

The Table-I accounting used to grep flat trace records; it now folds
the typed events on each transaction's span tree.  These tests prove
the span-derived counts reproduce the paper's table exactly, protocol
by protocol, straight from ``cluster.obs.spans`` — no flat log access.
"""

import pytest

from repro.analysis.costs import TABLE1, fold_span_costs
from repro.harness.scenarios import distributed_create_cluster


def run_one_create(protocol):
    cluster, client = distributed_create_cluster(protocol)
    done = cluster.sim.process(client.create("/dir1/f0"), name="t")
    cluster.sim.run(until=done)
    assert done.value["committed"]
    cluster.sim.run(until=cluster.sim.now + 60.0)
    return cluster


@pytest.mark.parametrize("protocol", sorted(TABLE1))
def test_span_fold_matches_paper_table1(protocol):
    cluster = run_one_create(protocol)
    roots = cluster.obs.spans.roots()
    assert len(roots) == 1
    row = fold_span_costs(roots[0], workers=1)
    assert row == TABLE1[protocol], (
        f"{protocol}: span-derived {row} != paper {TABLE1[protocol]}"
    )


@pytest.mark.parametrize("protocol", sorted(TABLE1))
def test_root_span_covers_the_worker_leg(protocol):
    cluster = run_one_create(protocol)
    root = cluster.obs.spans.roots()[0]
    assert root.status == "committed"
    assert root.protocol == protocol
    legs = [c for c in root.children if c.actor == "mds2"]
    assert len(legs) == 1, "the distributed CREATE must open one worker leg"
    assert legs[0].parent_id == root.span_id
    # The worker's forced redo write lives on its own leg, not the root.
    assert any(
        e.kind == "wal_append" and e.get("sync") for e in legs[0].events
    )


def test_metrics_agree_with_span_fold_for_1pc():
    """txn.messages folds the same protocol sends Table I counts
    (before the per-worker base-message subtraction)."""
    cluster = run_one_create("1PC")
    row = fold_span_costs(cluster.obs.spans.roots()[0], workers=1)
    messages = cluster.obs.metrics.get_histogram("txn.messages")
    # fold subtracts 2 base messages per worker; the raw histogram keeps them.
    assert messages.values == [float(row.msgs_total + 2)]
