"""Metrics registry unit tests."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_bumps():
    reg = MetricsRegistry()
    reg.inc("txn.committed")
    reg.inc("txn.committed", 2)
    assert reg.get_counter("txn.committed").value == 3.0


def test_histogram_summary_quantiles():
    reg = MetricsRegistry()
    for v in range(1, 101):
        reg.observe("lat", float(v))
    hist = reg.get_histogram("lat")
    assert hist.count == 100
    assert hist.minimum == 1.0 and hist.maximum == 100.0
    assert hist.mean == pytest.approx(50.5)
    summary = hist.summary()
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] > summary["p50"]
    assert summary["p99"] > summary["p95"]


def test_empty_histogram_summary_and_errors():
    reg = MetricsRegistry()
    hist = reg.histogram("empty")
    assert hist.summary() == {"count": 0}
    with pytest.raises(ValueError):
        _ = hist.mean


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    reg.inc("c")
    reg.observe("h", 1.0)
    assert reg.get_counter("c") is None
    assert reg.get_histogram("h") is None
    assert reg.snapshot() == {"counters": {}, "histograms": {}}


def test_snapshot_is_sorted_plain_data():
    import json

    reg = MetricsRegistry()
    reg.inc("b")
    reg.inc("a")
    reg.observe("z", 1.0)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["histograms"]["z"]["count"] == 1
    json.dumps(snap)  # fully serialisable


def test_create_on_first_use_returns_same_object():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.histogram("y") is reg.histogram("y")
    assert [c.name for c in reg.counters()] == ["x"]
    assert [h.name for h in reg.histograms()] == ["y"]
